package search

// The anytime move loop. Run pops the most violated triple off the
// score heap, evaluates a small set of candidate weight shifts for it
// against the exact incremental objective, commits the best improving
// one, and re-scores only the triples the move touched. Every
// intermediate state is a complete routing table, so the loop can stop
// at any evaluation budget. Everything here is allocation-free and
// deterministic: flat preallocated arrays, epoch-stamped scratch, fixed
// iteration order, index tie-breaks, and no wall-clock reads.

// Run descends for at most budget candidate evaluations and returns the
// exact state at exit. A fresh Reset (or SetDemand) must precede it.
//
//slate:hot
func (o *Optimizer) Run(budget int) Result {
	o.refresh()
	o.initScores()
	// Improvements below tol are noise; tie the threshold to the
	// objective's scale once per run so the loop terminates crisply.
	abs := o.obj
	if abs < 0 {
		abs = -abs
	}
	tol := 1e-9 * (1 + abs)

	var res Result
	for res.Evals < budget {
		r := int(o.hp[0])
		if o.score[r] <= tol {
			// Heap converged under (approximate) scores: polish with a
			// full deterministic sweep; only a clean sweep proves
			// convergence.
			improved := false
			for ri := 0; ri < o.nRules && res.Evals < budget; ri++ {
				if o.tryRule(ri, &res.Evals, tol) {
					res.Moves++
					improved = true
				}
			}
			if !improved {
				res.Converged = true
				break
			}
			o.initScores()
			continue
		}
		if o.tryRule(r, &res.Evals, tol) {
			res.Moves++
		} else {
			// Exact evaluation rejected the first-order estimate; park
			// the rule until a neighbor's change re-scores it.
			o.score[r] = 0
			o.hpFix(r)
		}
	}

	// Full-precision refresh so the reported objective (and the table
	// published from this state) carries zero incremental drift.
	o.recompute()
	res.Objective = o.obj
	res.LowerBound = o.lowerBound
	res.Feasible = o.feasible()
	if o.obj > 0 {
		res.Gap = (o.obj - o.lowerBound) / o.obj
		if res.Gap < 0 {
			res.Gap = 0
		}
	}
	return res
}

// initScores computes the exact first-order score of every rule and
// heapifies.
//
//slate:hot
func (o *Optimizer) initScores() {
	for r := 0; r < o.nRules; r++ {
		o.score[r] = o.scoreOf(r)
	}
	o.hpInit()
}

// scoreOf estimates rule r's violation: the first-order objective gain
// of shifting its movable weight from the most expensive placement slot
// to the cheapest, scaled by that weight. Marginal slot costs combine
// the destination pool's current PWL (or penalty) slope with the linear
// per-call cost, summed over every call-tree node the rule routes.
//
//slate:hot
func (o *Optimizer) scoreOf(r int) float64 {
	p := &o.pairs[r/o.C]
	src := r % o.C
	if p.nDst < 2 {
		return 0
	}
	if !o.slotCosts(p, src) {
		return 0
	}
	base := p.wOff + src*p.nDst
	hi, lo := -1, 0
	for s := 0; s < p.nDst; s++ {
		if o.w[base+s] > 1e-12 && (hi < 0 || o.mc[s] > o.mc[hi]) {
			hi = s
		}
		if o.mc[s] < o.mc[lo] {
			lo = s
		}
	}
	if hi < 0 {
		return 0
	}
	gain := o.mc[hi] - o.mc[lo]
	if gain <= 0 {
		return 0
	}
	return gain * o.w[base+hi]
}

// slotCosts fills o.mc (marginal objective cost per unit weight) and
// o.rate (standard-load rate per unit weight at the slot's pool) for
// rule (p, src). Returns false when the rule carries no traffic.
//
//slate:hot
func (o *Optimizer) slotCosts(p *pair, src int) bool {
	for s := 0; s < p.nDst; s++ {
		o.mc[s] = 0
		o.rate[s] = 0
	}
	any := false
	for k := 0; k < p.nodeN; k++ {
		nd := &o.nodes[o.pairNodes[p.nodeOff+k]]
		cr := nd.count * o.inflow[nd.parent*o.C+src]
		if cr <= 0 {
			continue
		}
		any = true
		for s := 0; s < p.nDst; s++ {
			lr := cr * o.scale[nd.scOff+s]
			o.rate[s] += lr
			o.mc[s] += lr*o.margCost(o.dstPool[p.dstOff+s]) + cr*o.lin[nd.linOff+src*p.nDst+s]
		}
	}
	return any
}

// margCost is the pool's current marginal delay cost per unit of
// standard load: the active PWL segment's slope, or the overload
// penalty at/beyond the utilization cap.
//
//slate:hot
func (o *Optimizer) margCost(pl int) float64 {
	si := o.segIdx[pl]
	if si >= o.pools[pl].segN {
		return o.penalty
	}
	return o.segS[o.pools[pl].segOff+si]
}

// tryRule attempts one improving move on rule r: pick the most
// expensive weighted slot as source and the cheapest slot as
// destination, evaluate a few candidate shift sizes exactly, and commit
// the best if it beats tol. Returns whether a move was committed;
// *evals is advanced per exact evaluation.
//
//slate:hot
func (o *Optimizer) tryRule(r int, evals *int, tol float64) bool {
	pi := r / o.C
	p := &o.pairs[pi]
	src := r % o.C
	if p.nDst < 2 || !o.slotCosts(p, src) {
		return false
	}
	base := p.wOff + src*p.nDst
	sa, sb := -1, 0
	for s := 0; s < p.nDst; s++ {
		if o.w[base+s] > 1e-12 && (sa < 0 || o.mc[s] > o.mc[sa]) {
			sa = s
		}
		if o.mc[s] < o.mc[sb] {
			sb = s
		}
	}
	if sa < 0 || sa == sb || o.mc[sa] <= o.mc[sb] {
		return false
	}
	wA := o.w[base+sa]

	// Candidate shift sizes: all of the source weight, two backoffs for
	// curvature, the destination pool's headroom to its next breakpoint,
	// and exactly the source pool's overload excess.
	o.cand[0], o.cand[1], o.cand[2] = wA, wA*0.5, wA*0.125
	nc := 3
	plB := o.dstPool[p.dstOff+sb]
	if si := o.segIdx[plB]; si < o.pools[plB].segN && o.rate[sb] > 0 {
		if hr := o.segEnd[o.pools[plB].segOff+si] - o.load[plB]; hr > 0 {
			if df := hr / o.rate[sb]; df < wA {
				o.cand[nc] = df
				nc++
			}
		}
	}
	plA := o.dstPool[p.dstOff+sa]
	if ex := o.load[plA] - o.pools[plA].width; ex > 0 && o.rate[sa] > 0 {
		if df := ex / o.rate[sa]; df < wA {
			o.cand[nc] = df
			nc++
		}
	}

	bestDelta, bestDf := 0.0, 0.0
	for _, df := range o.cand[:nc] {
		if df <= 1e-15 {
			continue
		}
		d := o.evalMove(pi, src, sa, sb, df)
		o.revertMove(pi, src, sa, sb)
		*evals++
		if d < bestDelta {
			bestDelta, bestDf = d, df
		}
	}
	if bestDf <= 0 || bestDelta >= -tol {
		return false
	}
	d := o.evalMove(pi, src, sa, sb, bestDf)
	*evals++
	o.commitMove(r, d)
	return true
}

// evalMove applies the weight shift (pair pi, source src, df from slot
// sa to slot sb) and computes the exact objective delta into scratch:
// the touched subtree's new inflow rows land in sInflow under the
// current epoch stamp, dirty pools accumulate load deltas, and nothing
// in the committed state changes. Caller must follow with revertMove or
// commitMove.
//
//slate:hot
func (o *Optimizer) evalMove(pi, src, sa, sb int, df float64) float64 {
	p := &o.pairs[pi]
	base := p.wOff + src*p.nDst
	o.savedWA, o.savedWB = o.w[base+sa], o.w[base+sb]
	o.w[base+sa] -= df
	if o.w[base+sa] < 0 {
		o.w[base+sa] = 0
	}
	o.w[base+sb] += df

	o.epoch++
	o.dirtyN = 0
	o.touchedN = 0
	var linDelta float64
	info := &o.classes[p.cls]
	for n := info.n0; n < info.n1; n++ {
		nd := &o.nodes[n]
		if nd.parent < 0 {
			continue
		}
		// A node is affected iff it routes the moved rule or sits below
		// an affected node; preorder guarantees parents are stamped
		// before children are visited.
		if nd.pair != pi && o.nodeStamp[nd.parent] != o.epoch {
			continue
		}
		o.nodeStamp[n] = o.epoch
		o.touched[o.touchedN] = int32(n)
		o.touchedN++

		np := &o.pairs[nd.pair]
		row := o.sInflow[n*o.C : (n+1)*o.C]
		for j := range row {
			row[j] = 0
		}
		var parentRow []float64
		if o.nodeStamp[nd.parent] == o.epoch {
			parentRow = o.sInflow[nd.parent*o.C : (nd.parent+1)*o.C]
		} else {
			parentRow = o.inflow[nd.parent*o.C : (nd.parent+1)*o.C]
		}
		var lin float64
		for i := 0; i < o.C; i++ {
			pr := parentRow[i]
			if pr <= 0 {
				continue
			}
			cr := nd.count * pr
			wrow := o.w[np.wOff+i*np.nDst : np.wOff+(i+1)*np.nDst]
			lrow := o.lin[nd.linOff+i*np.nDst : nd.linOff+(i+1)*np.nDst]
			for s := 0; s < np.nDst; s++ {
				ws := wrow[s]
				if ws <= 0 {
					continue
				}
				f := cr * ws
				row[o.dstC[np.dstOff+s]] += f
				lin += f * lrow[s]
			}
		}
		linDelta += lin - o.linNode[n]
		o.sLinNode[n] = lin

		old := o.inflow[n*o.C : (n+1)*o.C]
		for s := 0; s < np.nDst; s++ {
			j := o.dstC[np.dstOff+s]
			d := row[j] - old[j]
			if d != 0 { //slate:nolint floatcmp -- sparsity: unchanged slot contributes no load delta
				o.addPoolDelta(o.dstPool[np.dstOff+s], d*o.scale[nd.scOff+s])
			}
		}
	}

	delta := linDelta
	for k := 0; k < o.dirtyN; k++ {
		pl := int(o.dirtyPools[k])
		c, si := o.poolCostAt(pl, o.load[pl]+o.poolDelta[pl])
		o.sCost[pl] = c
		o.sSeg[pl] = si
		delta += c - o.cost[pl]
	}
	return delta
}

//slate:hot
func (o *Optimizer) addPoolDelta(pl int, d float64) {
	if o.poolStamp[pl] != o.epoch {
		o.poolStamp[pl] = o.epoch
		o.poolDelta[pl] = 0
		o.dirtyPools[o.dirtyN] = int32(pl)
		o.dirtyN++
	}
	o.poolDelta[pl] += d
}

// revertMove undoes the weight shift of the last evalMove; all other
// scratch is invalidated by the next epoch bump.
//
//slate:hot
func (o *Optimizer) revertMove(pi, src, sa, sb int) {
	p := &o.pairs[pi]
	base := p.wOff + src*p.nDst
	o.w[base+sa] = o.savedWA
	o.w[base+sb] = o.savedWB
}

// commitMove promotes the last evalMove into committed state and
// re-scores the triples it disturbed: the moved rule itself, child
// rules fed by every touched node, and — only when a pool's marginal
// cost actually changed segment — every rule with a slot on that pool.
//
//slate:hot
func (o *Optimizer) commitMove(r int, delta float64) {
	o.rEpoch++
	o.rescoreN = 0
	o.addRescore(r)

	for k := 0; k < o.touchedN; k++ {
		n := int(o.touched[k])
		copy(o.inflow[n*o.C:(n+1)*o.C], o.sInflow[n*o.C:(n+1)*o.C])
		o.linNode[n] = o.sLinNode[n]
		// Children's caller rates changed at this node's slot clusters.
		np := &o.pairs[o.nodes[n].pair]
		for c := o.childOff[n]; c < o.childOff[n+1]; c++ {
			cp := o.nodes[o.children[c]].pair
			for s := 0; s < np.nDst; s++ {
				o.addRescore(cp*o.C + o.dstC[np.dstOff+s])
			}
		}
	}
	for k := 0; k < o.dirtyN; k++ {
		pl := int(o.dirtyPools[k])
		o.load[pl] += o.poolDelta[pl]
		o.cost[pl] = o.sCost[pl]
		if o.sSeg[pl] != o.segIdx[pl] {
			o.segIdx[pl] = o.sSeg[pl]
			// Marginal cost changed: every rule with a slot here is
			// stale. (Within a segment the slope is constant, so this
			// triggers rarely.)
			for q := o.prOff[pl]; q < o.prOff[pl+1]; q++ {
				o.addRescore(int(o.prList[q]))
			}
		}
	}
	o.obj += delta

	for k := 0; k < o.rescoreN; k++ {
		rr := int(o.rescore[k])
		o.score[rr] = o.scoreOf(rr)
		o.hpFix(rr)
	}
}

//slate:hot
func (o *Optimizer) addRescore(r int) {
	if o.ruleStamp[r] != o.rEpoch {
		o.ruleStamp[r] = o.rEpoch
		o.rescore[o.rescoreN] = int32(r)
		o.rescoreN++
	}
}
