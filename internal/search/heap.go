package search

// Addressable binary max-heap over rule (triple) indices, ordered by
// violation score descending with rule index ascending as the
// deterministic tie-break. hpPos maps rule → heap slot so a single
// rule's score change is a O(log n) sift, not a rebuild. All rules stay
// in the heap for their lifetime (a non-improving rule just carries
// score 0), which keeps the bookkeeping branch-free.

//slate:hot
func (o *Optimizer) hpLess(a, b int32) bool {
	sa, sb := o.score[a], o.score[b]
	if sa != sb { //slate:nolint floatcmp -- heap order: exact tie falls through to the index tie-break
		return sa > sb
	}
	return a < b
}

// hpInit heapifies all rules. Called after bulk rescoring.
//
//slate:hot
func (o *Optimizer) hpInit() {
	for i := 0; i < o.nRules; i++ {
		o.hp[i] = int32(i)
		o.hpPos[i] = int32(i)
	}
	for i := o.nRules/2 - 1; i >= 0; i-- {
		o.hpDown(i)
	}
}

// hpFix restores heap order after rule r's score changed.
//
//slate:hot
func (o *Optimizer) hpFix(r int) {
	i := int(o.hpPos[r])
	if !o.hpUp(i) {
		o.hpDown(i)
	}
}

//slate:hot
func (o *Optimizer) hpUp(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !o.hpLess(o.hp[i], o.hp[p]) {
			break
		}
		o.hpSwap(i, p)
		i = p
		moved = true
	}
	return moved
}

//slate:hot
func (o *Optimizer) hpDown(i int) {
	n := o.nRules
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && o.hpLess(o.hp[l], o.hp[best]) {
			best = l
		}
		if r < n && o.hpLess(o.hp[r], o.hp[best]) {
			best = r
		}
		if best == i {
			return
		}
		o.hpSwap(i, best)
		i = best
	}
}

//slate:hot
func (o *Optimizer) hpSwap(i, j int) {
	o.hp[i], o.hp[j] = o.hp[j], o.hp[i]
	o.hpPos[o.hp[i]] = int32(i)
	o.hpPos[o.hp[j]] = int32(j)
}
