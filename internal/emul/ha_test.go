package emul

import (
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/controlplane"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/fault"
	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// TestMeshReplicatedControlPlaneFailsOver runs the mesh with three
// global replicas, crashes the elected leader, and checks a rival takes
// over once the lease lapses — with the routing tables still flowing.
func TestMeshReplicatedControlPlaneFailsOver(t *testing.T) {
	const ttl = 300 * time.Millisecond
	inj := fault.NewInjector(sim.NewRNG(7))
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(10 * time.Millisecond),
		App:        smallChain(),
		NetemScale: 0.1,
		Seed:       1,
		Fault:      inj,
		Controller: core.ControllerConfig{DemandSmoothing: 1, Decompose: true},
		Replicas:   3,
		HA:         controlplane.HAConfig{LeaseTTL: ttl, EventThreshold: -1},
	})
	if got := len(m.Globals()); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
	// Synthetic gateway load so the optimizer has demand to publish for.
	feed := func() {
		m.ClusterController(topology.West).Ingest([]telemetry.WindowStats{{
			Key:      telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.West)},
			RPS:      5000,
			Requests: 5000,
			Window:   100 * time.Millisecond,
		}})
	}

	// First control round elects a leader (the first replica to step).
	feed()
	if err := m.TickControl(100 * time.Millisecond); err != nil {
		t.Fatalf("tick: %v", err)
	}
	leader := m.GlobalLeader()
	if leader == nil {
		t.Fatal("no leader after the first control round")
	}
	if leader != m.Globals()[0] {
		t.Fatal("replica 0 steps first and must win the first election")
	}
	v0 := m.ClusterController(topology.West).Table().Version
	if v0 == 0 {
		t.Fatal("leader never published a table")
	}

	// Kill the leader. Until the lease lapses no rival may take over;
	// after it lapses, the next replica in step order must.
	m.CrashGlobalReplica(0)
	feed()
	if err := m.TickControl(100 * time.Millisecond); err == nil {
		t.Log("tick with crashed leader reported no error (followers fine)")
	}
	if g := m.GlobalLeader(); g != nil {
		t.Fatal("a rival took over while the dead leader's lease was live")
	}
	time.Sleep(ttl + 100*time.Millisecond)
	feed()
	// Reports to the dead replica still fail (and say so); the surviving
	// replicas must elect and publish regardless.
	if err := m.TickControl(100 * time.Millisecond); err != nil {
		t.Logf("post-failover tick (dead-replica report errors expected): %v", err)
	}
	next := m.GlobalLeader()
	if next == nil {
		t.Fatal("no replica took over after the lease lapsed")
	}
	if next != m.Globals()[1] {
		t.Fatal("replica 1 steps first among survivors and must win")
	}
	if got := m.ClusterController(topology.West).Table().Version; got < v0 {
		t.Fatalf("failover regressed the table: %d -> %d", v0, got)
	}

	// The old leader restarts, rejoins as a follower, and the system
	// keeps exactly one leader.
	m.RestartGlobalReplica(0)
	feed()
	if err := m.TickControl(100 * time.Millisecond); err != nil {
		t.Fatalf("rejoin tick: %v", err)
	}
	leaders := 0
	for _, g := range m.Globals() {
		if g.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	if m.Globals()[0].IsLeader() {
		t.Fatal("restarted replica displaced a live leader")
	}
}
