package emul

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/fault"
	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func faultyMesh(t *testing.T) (*Mesh, *fault.Injector) {
	t.Helper()
	inj := fault.NewInjector(sim.NewRNG(99).DeriveNamed("fault"))
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(10 * time.Millisecond),
		App:        smallChain(),
		NetemScale: 0.1,
		Seed:       3,
		Fault:      inj,
		StaleAfter: 200 * time.Millisecond,
	})
	return m, inj
}

func TestMeshServesThroughGlobalOutage(t *testing.T) {
	m, _ := faultyMesh(t)
	if err := m.TickControl(time.Second); err != nil {
		t.Fatalf("healthy tick: %v", err)
	}

	m.CrashGlobal()
	// The control plane is down: ticking reports it but must not wedge.
	if err := m.TickControl(time.Second); err == nil {
		t.Error("tick during global outage reported no error")
	} else if !strings.Contains(err.Error(), "down") {
		t.Errorf("outage tick error = %v, want a down marker", err)
	}
	// The crashed controller's API answers 503 to anyone who asks.
	resp, err := http.Get(m.GlobalURL() + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("crashed global status = %d, want 503", resp.StatusCode)
	}

	// The dataplane keeps serving end to end regardless.
	res, err := m.Drive(context.Background(), "default", topology.West, 30, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 || len(res.Latencies) == 0 {
		t.Fatalf("dataplane suffered during control outage: %d errors, %d ok", res.Errors, len(res.Latencies))
	}

	m.RestartGlobal()
	if err := m.TickControl(time.Second); err != nil {
		t.Errorf("tick after restart: %v", err)
	}
}

func TestMeshClusterCrashExcludesItFromControl(t *testing.T) {
	m, inj := faultyMesh(t)
	m.CrashCluster(topology.East)
	// West still reports; east's report fails but is contained.
	err := m.TickControl(time.Second)
	if err == nil {
		t.Error("tick with east down reported no error")
	}
	if inj.IsDown(fault.ClusterTarget(topology.East)) != true {
		t.Fatal("east not marked down")
	}
	// West's controller kept working: its report reached the global and
	// the tick still pushed rules to west.
	resp, err := http.Get(m.GlobalURL() + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("global status = %d after a cluster crash", resp.StatusCode)
	}
	m.RestartCluster(topology.East)
	if err := m.TickControl(time.Second); err != nil {
		t.Errorf("tick after east restart: %v", err)
	}
}

func TestMeshPartitionDropsCrossClusterControlRPCs(t *testing.T) {
	m, inj := faultyMesh(t)
	// Cut west from east: cross-cluster control traffic dies, but both
	// clusters' local loops and the global (outside any cluster) are
	// untouched in this wiring, so a control tick still works.
	inj.PartitionClusters(topology.West, topology.East)
	if err := m.TickControl(time.Second); err != nil {
		t.Errorf("tick under west-east partition: %v (global is not inside a cluster)", err)
	}
	inj.HealAll()
	if err := m.TickControl(time.Second); err != nil {
		t.Errorf("tick after heal: %v", err)
	}
}

func TestMeshStaleAfterFlowsToProxies(t *testing.T) {
	m, _ := faultyMesh(t)
	p := m.Proxy("gateway", topology.West)
	if p.RulesStale() {
		t.Fatal("rules stale immediately after start")
	}
	time.Sleep(250 * time.Millisecond) // past the 200ms StaleAfter
	if !p.RulesStale() {
		t.Fatal("rules not stale past StaleAfter without a control tick")
	}
	// A control round refreshes every proxy through the rule push.
	if err := m.TickControl(time.Second); err != nil {
		t.Fatalf("tick: %v", err)
	}
	if p.RulesStale() {
		t.Error("rules still stale after a successful control round")
	}
}
