package emul

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func smallChain() *appgraph.App {
	return appgraph.LinearChain(appgraph.ChainOptions{
		Services:        2,
		MeanServiceTime: 2 * time.Millisecond,
		Dist:            appgraph.DistDeterministic,
		Pool:            appgraph.ReplicaPool{Replicas: 1, Concurrency: 8},
		Clusters:        []topology.ClusterID{topology.West, topology.East},
		ResponseBytes:   512,
	})
}

func startMesh(t *testing.T, opts Options) *Mesh {
	t.Helper()
	m, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestMeshServesRequestEndToEnd(t *testing.T) {
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(10 * time.Millisecond),
		App:        smallChain(),
		NetemScale: 0.1,
		Seed:       1,
	})
	fe, err := m.FrontendURL(topology.West)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", fe+"/ingress", nil)
	req.Header.Set(dataplane.HeaderClass, "default")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body=%q", resp.StatusCode, string(body))
	}
	if len(body) != 512 {
		t.Errorf("response bytes = %d, want 512", len(body))
	}
	// Telemetry flowed: the frontend proxy saw the request.
	stats := m.Proxy("gateway", topology.West).FlushTelemetry(time.Second)
	if len(stats) == 0 {
		t.Error("no telemetry at the gateway sidecar")
	}
}

func TestMeshDriveCollectsLatencies(t *testing.T) {
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(10 * time.Millisecond),
		App:        smallChain(),
		NetemScale: 0.1,
		Seed:       2,
	})
	res, err := m.Drive(context.Background(), "default", topology.West, 50, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d/%d requests failed", res.Errors, res.Sent)
	}
	if len(res.Latencies) < 30 {
		t.Fatalf("only %d requests completed", len(res.Latencies))
	}
	// Chain of 2 services at 2ms deterministic: at least ~4ms each.
	if res.Mean() < 4*time.Millisecond {
		t.Errorf("mean %v below service-time floor", res.Mean())
	}
	if res.P99() < res.Mean() {
		t.Errorf("p99 %v < mean %v", res.P99(), res.Mean())
	}
}

func TestMeshControlLoopInstallsRulesUnderOverload(t *testing.T) {
	// West pool concurrency 2 at 20ms => ~100 RPS capacity; drive 150
	// RPS into west and idle east: the control loop must start
	// offloading west traffic to east.
	app := appgraph.LinearChain(appgraph.ChainOptions{
		Services:        1,
		MeanServiceTime: 20 * time.Millisecond,
		Dist:            appgraph.DistDeterministic,
		Pool:            appgraph.ReplicaPool{Replicas: 1, Concurrency: 2},
		Clusters:        []topology.ClusterID{topology.West, topology.East},
		ResponseBytes:   128,
	})
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(10 * time.Millisecond),
		App:        app,
		NetemScale: 0.1,
		Controller: core.ControllerConfig{DemandSmoothing: 1},
		Seed:       3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Drive load and tick the control plane in between.
	for round := 0; round < 3; round++ {
		if _, err := m.Drive(ctx, "default", topology.West, 120, time.Second); err != nil {
			t.Fatal(err)
		}
		if err := m.TickControl(time.Second); err != nil {
			t.Logf("control tick: %v (may be transient)", err)
		}
	}
	p := m.Proxy("svc-1", topology.West)
	// The caller of svc-1 is the gateway; its west sidecar must hold an
	// offload rule for svc-1.
	gw := m.Proxy("gateway", topology.West)
	d := gw.Table().Lookup("svc-1", "default", topology.West)
	if d.Weight(topology.East) <= 0 {
		t.Errorf("control loop installed no offload: %v (version %d)", d, gw.TableVersion())
	}
	_ = p
}

func TestMeshPartialReplicationRoutesRemote(t *testing.T) {
	app := appgraph.AnomalyDetection(appgraph.AnomalyOptions{
		MetricsBytes:  10_000,
		ResponseRatio: 10,
		FrontendTime:  200 * time.Microsecond,
		ProcessTime:   time.Millisecond,
		QueryTime:     time.Millisecond,
		Pool:          appgraph.ReplicaPool{Replicas: 1, Concurrency: 8},
	})
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(20 * time.Millisecond),
		App:        app,
		NetemScale: 0.05,
		Seed:       4,
	})
	// DB absent in west: requests must still succeed via east.
	res, err := m.Drive(context.Background(), "detect", topology.West, 30, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d requests failed (DB failover broken)", res.Errors)
	}
	// The MP sidecar in west must have crossed clusters (egress > 0).
	stats := m.Proxy(appgraph.AnomalyMP, topology.West).FlushTelemetry(time.Second)
	var egress int64
	for _, ws := range stats {
		if ws.Key.Service == "__egress__" {
			egress += ws.EgressBytes
		}
	}
	if egress == 0 {
		t.Error("no egress recorded for forced cross-cluster DB calls")
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	app := smallChain()
	app.Classes = nil
	if _, err := Start(Options{Top: topology.TwoClusters(time.Millisecond), App: app}); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestMeshGlobalStatusReachable(t *testing.T) {
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(10 * time.Millisecond),
		App:        smallChain(),
		NetemScale: 0.1,
		Seed:       5,
	})
	resp, err := http.Get(m.GlobalURL() + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status endpoint = %d", resp.StatusCode)
	}
}

func TestMeshTracesReconstructAcrossSidecars(t *testing.T) {
	// Spans emitted by different sidecars for one request must link into
	// a single call tree: fr -> svc chain with correct parentage.
	app := appgraph.AnomalyDetection(appgraph.AnomalyOptions{
		MetricsBytes:  10_000,
		ResponseRatio: 10,
		FrontendTime:  200 * time.Microsecond,
		ProcessTime:   time.Millisecond,
		QueryTime:     time.Millisecond,
		Pool:          appgraph.ReplicaPool{Replicas: 1, Concurrency: 8},
	})
	m := startMesh(t, Options{
		Top:        topology.TwoClusters(10 * time.Millisecond),
		App:        app,
		NetemScale: 0.05,
		Seed:       11,
	})
	fe, err := m.FrontendURL(topology.East)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET", fe+"/detect", nil)
	req.Header.Set(dataplane.HeaderClass, "detect")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var spans []telemetry.Span
	for _, svc := range []appgraph.ServiceID{appgraph.AnomalyFR, appgraph.AnomalyMP, appgraph.AnomalyDB} {
		for _, cl := range []topology.ClusterID{topology.West, topology.East} {
			if p := m.Proxy(svc, cl); p != nil {
				spans = append(spans, p.DrainSpans()...)
			}
		}
	}
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3 (fr, mp, db)", len(spans))
	}
	tree, err := telemetry.BuildTree(spans)
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphan spans: %d", len(tree.Orphans))
	}
	if tree.Root.Span.Service != "fr" ||
		tree.Root.Children[0].Span.Service != "mp" ||
		tree.Root.Children[0].Children[0].Span.Service != "db" {
		t.Error("trace structure wrong")
	}
	// The learned class from this live trace must match the app shape.
	cl, err := appgraph.FromTrace("detect", spans)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Root.Children[0].Children[0].Service != appgraph.AnomalyDB {
		t.Error("learned class structure wrong")
	}
}
