// Package emul runs a SLATE deployment on real sockets: every replica
// pool becomes a loopback HTTP application server with a SLATE-proxy
// sidecar, every cluster gets a Cluster Controller, and a Global
// Controller optimizes over live telemetry — the whole paper
// architecture (Fig. 2) in one process. Inter-cluster latency is
// injected by netem (the `tc` substitute).
//
// The emulation exists to exercise the real networked code paths end to
// end; the discrete-event simulator (internal/simrun) is the tool for
// quantitative sweeps. On a small machine keep loads in the tens of
// RPS and scale service times down with TimeScale.
package emul

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/controlplane"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/fault"
	"github.com/servicelayernetworking/slate/internal/netem"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// Options configures a mesh.
type Options struct {
	Top *topology.Topology
	App *appgraph.App
	// TimeScale multiplies every service time (0.1 = 10x faster). Zero
	// means 1.
	TimeScale float64
	// NetemScale multiplies inter-cluster delays. Zero means 1.
	NetemScale float64
	// ControlPeriod is the telemetry/optimization interval; zero
	// disables the background control loop (call TickControl manually).
	ControlPeriod time.Duration
	// Controller configures the SLATE global controller.
	Controller core.ControllerConfig
	// Seed for routing picks.
	Seed int64
	// Fault, when non-nil, injects failures into the mesh: every
	// control-plane RPC goes through a fault.Transport, a crashed
	// controller's HTTP API answers 503, and TickControl skips the
	// global optimization while the global controller is down. Drive
	// it directly (Crash/Restart/PartitionClusters) or replay a
	// fault.Schedule via Injector.Sync.
	Fault *fault.Injector
	// StaleAfter bounds control-plane staleness during faults: cluster
	// controllers exclude pushed telemetry older than this from the
	// global snapshot, and proxies degrade to local-biased routing when
	// their rules have not been refreshed within it. Zero disables both.
	StaleAfter time.Duration
	// Replicas > 1 runs a replicated global control plane: N global
	// controllers (fault targets "global:0" … "global:N-1") contend for
	// the leader lease held by the cluster controllers, which report
	// telemetry to all of them. TickControl then drives one HAStep per
	// live replica, in replica order. Zero or one keeps the classic
	// single controller under the "global" target.
	Replicas int
	// HA tunes the replicated control plane (only read when Replicas > 1).
	HA controlplane.HAConfig
}

// Mesh is a running emulated deployment. Close it when done.
type Mesh struct {
	opts     Options
	nem      *netem.Emulator
	registry *registry
	hosts    *fault.HostMap // URL host -> fault target (nil without Fault)

	servers  []*http.Server
	lns      []net.Listener
	proxies  map[poolID]*dataplane.Proxy
	ccs      map[topology.ClusterID]*controlplane.Cluster
	global   *controlplane.Global // replica 0
	globals  []*controlplane.Global
	gsrv     *http.Server
	gURL     string // replica 0's URL
	gURLs    []string
	ctx      context.Context
	cancel   context.CancelFunc
	stopCtrl chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type poolID struct {
	svc appgraph.ServiceID
	cl  topology.ClusterID
}

// registry is the service-discovery substitute: (service, cluster) →
// sidecar base URL.
type registry struct {
	mu sync.RWMutex
	m  map[poolID]string
}

func (r *registry) Resolve(service string, cluster topology.ClusterID) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.m[poolID{appgraph.ServiceID(service), cluster}]
	if !ok {
		return "", fmt.Errorf("emul: no replicas of %s in %s", service, cluster)
	}
	return u, nil
}

func (r *registry) add(id poolID, url string) {
	r.mu.Lock()
	r.m[id] = url
	r.mu.Unlock()
}

// Start builds and starts the mesh: app servers, sidecars, cluster
// controllers, and the global controller, all on loopback listeners.
func Start(opts Options) (*Mesh, error) {
	if opts.Top == nil || opts.App == nil {
		return nil, fmt.Errorf("emul: missing topology or app")
	}
	if err := opts.App.Validate(opts.Top); err != nil {
		return nil, fmt.Errorf("emul: %w", err)
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	m := &Mesh{
		opts:     opts,
		nem:      netem.New(opts.Top, opts.NetemScale),
		registry: &registry{m: map[poolID]string{}},
		proxies:  map[poolID]*dataplane.Proxy{},
		ccs:      map[topology.ClusterID]*controlplane.Cluster{},
	}
	// ctx spans the mesh's lifetime: Close cancels it, which aborts any
	// in-flight control-plane RPC instead of waiting out HTTP timeouts.
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if opts.Fault != nil {
		m.hosts = fault.NewHostMap()
	}
	// One RNG stream per sidecar, derived by pool name: derivation is a
	// pure function of (seed, name), so routing draws are reproducible
	// regardless of the map-iteration order pools start in.
	rng := sim.NewRNG(opts.Seed)

	// Global controller(s). With Replicas > 1 each replica is its own
	// fault target and advertises its URL as its lease identity.
	replicas := opts.Replicas
	if replicas < 1 {
		replicas = 1
	}
	for i := 0; i < replicas; i++ {
		ctrl, err := core.NewController(opts.Top, opts.App, opts.Controller)
		if err != nil {
			m.Close()
			return nil, err
		}
		g := controlplane.NewGlobal(ctrl)
		target := fault.Global
		if replicas > 1 {
			target = fault.GlobalReplica(i)
		}
		gURL, gsrv, err := m.serveTarget(g.Handler(), target)
		if err != nil {
			m.Close()
			return nil, err
		}
		if replicas > 1 {
			g.EnableHA(gURL, opts.HA)
		}
		if opts.Fault != nil {
			g.SetTransport(fault.NewTransport(nil, opts.Fault, target, m.hosts))
		}
		m.globals = append(m.globals, g)
		m.gURLs = append(m.gURLs, gURL)
		if i == 0 {
			m.global, m.gURL, m.gsrv = g, gURL, gsrv
		}
	}

	// Cluster controllers, reporting to (and voting for) every replica.
	for _, cl := range opts.Top.ClusterIDs() {
		cc := controlplane.NewCluster(cl, m.gURLs[0])
		for _, u := range m.gURLs[1:] {
			cc.AddUpstream(u)
		}
		if opts.StaleAfter > 0 {
			cc.SetStaleAfter(opts.StaleAfter)
		}
		if opts.Fault != nil {
			cc.SetTransport(fault.NewTransport(nil, opts.Fault, fault.ClusterTarget(cl), m.hosts))
		}
		ccURL, _, err := m.serveTarget(cc.Handler(), fault.ClusterTarget(cl))
		if err != nil {
			m.Close()
			return nil, err
		}
		if err := cc.Register(m.ctx, ccURL); err != nil {
			m.Close()
			return nil, err
		}
		m.ccs[cl] = cc
	}

	// Application servers + sidecars, one pool per (service, cluster).
	for sid, svc := range opts.App.Services {
		for cl, pool := range svc.Placement {
			if pool.Replicas <= 0 {
				continue
			}
			id := poolID{sid, cl}
			app := newAppServer(opts.App, sid, cl, pool.Servers(), opts.TimeScale, m.registry)
			appURL, _, err := m.serve(app)
			if err != nil {
				m.Close()
				return nil, err
			}
			proxy, err := dataplane.New(dataplane.Config{
				Service:    string(sid),
				Cluster:    cl,
				LocalApp:   appURL,
				Resolver:   m.registry,
				Netem:      m.nem,
				RNG:        rng.DeriveNamed(string(sid) + "@" + string(cl)),
				Fallback:   opts.Top.Nearest(cl),
				StaleAfter: opts.StaleAfter,
			})
			if err != nil {
				m.Close()
				return nil, err
			}
			proxyURL, _, err := m.serveTarget(proxy, fault.ProxyTarget(string(sid), cl))
			if err != nil {
				m.Close()
				return nil, err
			}
			m.registry.add(id, proxyURL)
			m.proxies[id] = proxy
			m.ccs[cl].AddProxy(proxy)
			app.sidecar = proxyURL
		}
	}

	if opts.ControlPeriod > 0 {
		m.stopCtrl = make(chan struct{})
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			t := time.NewTicker(opts.ControlPeriod)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					m.TickControl(opts.ControlPeriod)
				case <-m.stopCtrl:
					return
				}
			}
		}()
	}
	return m, nil
}

// TickControl runs one control-plane round synchronously: every cluster
// controller reports its window, then the global controller optimizes
// and pushes rules. One cluster's failure does not stop the others —
// during faults the surviving controllers must keep reporting — and a
// crashed global controller skips the optimization entirely (errors
// from all of it are joined).
func (m *Mesh) TickControl(window time.Duration) error {
	var errs []error
	for _, cc := range m.ccs {
		if err := cc.Report(m.ctx, window); err != nil {
			errs = append(errs, err)
		}
	}
	if len(m.globals) > 1 {
		// Replicated control plane: every live replica steps (campaign,
		// then tick or snapshot-fetch); crashed replicas simply miss their
		// step, exactly like a dead process misses its timer.
		live := 0
		for i, g := range m.globals {
			if f := m.opts.Fault; f != nil && f.IsDown(fault.GlobalReplica(i)) {
				continue
			}
			live++
			if err := g.HAStep(m.ctx); err != nil {
				errs = append(errs, err)
			}
		}
		if live == 0 {
			errs = append(errs, fmt.Errorf("emul: all global replicas down, optimization skipped"))
		}
		return errors.Join(errs...)
	}
	if f := m.opts.Fault; f != nil && f.IsDown(fault.Global) {
		errs = append(errs, fmt.Errorf("emul: global controller down, optimization skipped"))
		return errors.Join(errs...)
	}
	if err := m.global.Tick(m.ctx); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// CrashGlobal / RestartGlobal / CrashCluster / RestartCluster drive the
// fault injector by component name; no-ops without Options.Fault.
func (m *Mesh) CrashGlobal() {
	if m.opts.Fault != nil {
		m.opts.Fault.Crash(fault.Global)
	}
}

// RestartGlobal brings a crashed global controller back.
func (m *Mesh) RestartGlobal() {
	if m.opts.Fault != nil {
		m.opts.Fault.Restart(fault.Global)
	}
}

// CrashCluster takes one cluster controller down.
func (m *Mesh) CrashCluster(cl topology.ClusterID) {
	if m.opts.Fault != nil {
		m.opts.Fault.Crash(fault.ClusterTarget(cl))
	}
}

// RestartCluster brings a crashed cluster controller back.
func (m *Mesh) RestartCluster(cl topology.ClusterID) {
	if m.opts.Fault != nil {
		m.opts.Fault.Restart(fault.ClusterTarget(cl))
	}
}

// SetNow overrides the control plane's clock — every global replica and
// cluster controller reads lease deadlines from it. Experiments advance
// a virtual clock one control period per round so leader-failover
// timing is deterministic regardless of wall-clock speed.
func (m *Mesh) SetNow(now func() time.Time) {
	for _, g := range m.globals {
		g.SetNow(now)
	}
	for _, cc := range m.ccs {
		cc.SetNow(now)
	}
}

// ClusterController exposes a cluster's controller daemon (tests and
// health introspection).
func (m *Mesh) ClusterController(cl topology.ClusterID) *controlplane.Cluster {
	return m.ccs[cl]
}

// FrontendURL returns the frontend sidecar URL in a cluster — where
// user traffic enters.
func (m *Mesh) FrontendURL(cluster topology.ClusterID) (string, error) {
	return m.registry.Resolve(string(m.opts.App.FrontendService()), cluster)
}

// Proxy returns the sidecar for a pool (tests and introspection).
func (m *Mesh) Proxy(svc appgraph.ServiceID, cl topology.ClusterID) *dataplane.Proxy {
	return m.proxies[poolID{svc, cl}]
}

// DrainSpans drains every sidecar's buffered trace spans, sorted by
// (trace, start, span ID) so dumps are deterministic. Feed the result to
// an obs.SpanWriter to export a JSONL trace file.
func (m *Mesh) DrainSpans() []telemetry.Span {
	var out []telemetry.Span
	for _, p := range m.proxies {
		out = append(out, p.DrainSpans()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
	return out
}

// GlobalURL returns the global controller's API base URL (replica 0
// when replicated).
func (m *Mesh) GlobalURL() string { return m.gURL }

// Globals returns every global-controller replica (one element without
// Options.Replicas).
func (m *Mesh) Globals() []*controlplane.Global { return m.globals }

// GlobalLeader returns the replica currently holding the leader lease,
// or nil when no replica leads (mid-failover, or all crashed).
func (m *Mesh) GlobalLeader() *controlplane.Global {
	for i, g := range m.globals {
		if f := m.opts.Fault; f != nil && len(m.globals) > 1 && f.IsDown(fault.GlobalReplica(i)) {
			continue
		}
		if g.IsLeader() {
			return g
		}
	}
	return nil
}

// CrashGlobalReplica takes one global replica down (no-op without
// Options.Fault or outside replicated mode).
func (m *Mesh) CrashGlobalReplica(i int) {
	if m.opts.Fault != nil && i >= 0 && i < len(m.globals) {
		m.opts.Fault.Crash(fault.GlobalReplica(i))
	}
}

// RestartGlobalReplica brings a crashed global replica back.
func (m *Mesh) RestartGlobalReplica(i int) {
	if m.opts.Fault != nil && i >= 0 && i < len(m.globals) {
		m.opts.Fault.Restart(fault.GlobalReplica(i))
	}
}

// ClusterStats returns the last telemetry window the cluster controller
// collected (populated by TickControl / the background control loop).
func (m *Mesh) ClusterStats(cluster topology.ClusterID) []telemetry.WindowStats {
	cc, ok := m.ccs[cluster]
	if !ok {
		return nil
	}
	return cc.LastStats()
}

// serveTarget serves h as a named fault target: when the injector marks
// the target down its API answers 503 (the crashed process), and the
// listener's host is registered so fault transports can resolve
// requests to this component. Without Options.Fault it is plain serve.
func (m *Mesh) serveTarget(h http.Handler, t fault.Target) (string, *http.Server, error) {
	if m.opts.Fault != nil {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if m.opts.Fault.IsDown(t) {
				http.Error(w, fmt.Sprintf("emul: %s is down", t), http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	url, srv, err := m.serve(h)
	if err == nil && m.hosts != nil {
		m.hosts.Register(url, t)
	}
	return url, srv, err
}

// serve starts an HTTP server on a fresh loopback listener.
func (m *Mesh) serve(h http.Handler) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	m.mu.Lock()
	m.servers = append(m.servers, srv)
	m.lns = append(m.lns, ln)
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		srv.Serve(ln)
	}()
	return "http://" + ln.Addr().String(), srv, nil
}

// Close shuts every server down.
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	servers := m.servers
	m.mu.Unlock()
	if m.stopCtrl != nil {
		close(m.stopCtrl)
	}
	m.cancel() // abort in-flight control-plane RPCs
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, s := range servers {
		s.Shutdown(ctx)
	}
	m.wg.Wait()
}

// appServer emulates one service's application instances: it performs
// the call node's busy time (bounded by the pool's concurrency), issues
// child calls through the sidecar, and writes the configured response
// size. The paper's microbenchmark services do file writes; busy-time
// sleep reproduces the same load-to-latency behaviour without hitting
// the disk.
type appServer struct {
	app     *appgraph.App
	service appgraph.ServiceID
	cluster topology.ClusterID
	scale   float64
	reg     *registry
	sidecar string // set after the sidecar starts
	slots   chan struct{}
	client  *http.Client

	// nodes maps "METHOD path" to the call nodes it may execute (one per
	// class).
	nodes map[string][]*appgraph.CallNode

	mReqs *obs.Counter
}

func newAppServer(app *appgraph.App, sid appgraph.ServiceID, cl topology.ClusterID, servers int, scale float64, reg *registry) *appServer {
	s := &appServer{
		app:     app,
		service: sid,
		cluster: cl,
		scale:   scale,
		reg:     reg,
		slots:   make(chan struct{}, servers),
		client:  &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}},
		nodes:   map[string][]*appgraph.CallNode{},
		mReqs: obs.Default().CounterVec("slate_app_requests_total",
			"Requests executed by emulated application instances.",
			"service", "cluster").With(string(sid), string(cl)),
	}
	for _, class := range app.Classes {
		class.Root.Walk(func(n *appgraph.CallNode) {
			if n.Service == sid {
				key := n.Method + " " + n.Path
				s.nodes[key] = append(s.nodes[key], n)
			}
		})
	}
	return s
}

func (s *appServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	node := s.findNode(r)
	if node == nil {
		http.Error(w, fmt.Sprintf("%s: no endpoint %s %s", s.service, r.Method, r.URL.Path), http.StatusNotFound)
		return
	}
	io.Copy(io.Discard, r.Body)
	s.mReqs.Inc()

	// Busy time occupies one of the pool's concurrency slots.
	s.slots <- struct{}{}
	if d := time.Duration(float64(node.Work.MeanServiceTime) * s.scale); d > 0 {
		time.Sleep(d)
	}
	<-s.slots

	// Child calls go through the sidecar, which applies routing rules.
	if err := s.callChildren(r, node); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	writeZeros(w, node.Work.ResponseBytes)
}

func (s *appServer) findNode(r *http.Request) *appgraph.CallNode {
	candidates := s.nodes[r.Method+" "+r.URL.Path]
	if len(candidates) == 0 {
		return nil
	}
	return candidates[0]
}

func (s *appServer) callChildren(r *http.Request, node *appgraph.CallNode) error {
	if len(node.Children) == 0 {
		return nil
	}
	call := func(ch *appgraph.CallNode) error {
		for i := 0; i < ch.Count; i++ {
			req, err := http.NewRequestWithContext(r.Context(), ch.Method, s.sidecar+ch.Path, strings.NewReader(strings.Repeat("x", int(min(ch.Work.RequestBytes, 1<<20)))))
			if err != nil {
				return err
			}
			req.Header.Set(dataplane.HeaderOutbound, string(ch.Service))
			req.Header.Set(dataplane.HeaderClass, r.Header.Get(dataplane.HeaderClass))
			req.Header.Set(dataplane.HeaderTraceID, r.Header.Get(dataplane.HeaderTraceID))
			// Propagate the caller's span so the callee's span links to it.
			req.Header.Set(dataplane.HeaderSpanID, r.Header.Get(dataplane.HeaderSpanID))
			resp, err := s.client.Do(req)
			if err != nil {
				return fmt.Errorf("%s -> %s: %w", s.service, ch.Service, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				return fmt.Errorf("%s -> %s: status %d", s.service, ch.Service, resp.StatusCode)
			}
		}
		return nil
	}
	if node.Parallel {
		errs := make(chan error, len(node.Children))
		for _, ch := range node.Children {
			ch := ch
			go func() { errs <- call(ch) }()
		}
		var first error
		for range node.Children {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for _, ch := range node.Children {
		if err := call(ch); err != nil {
			return err
		}
	}
	return nil
}

func writeZeros(w io.Writer, n int64) {
	const chunk = 32 << 10
	buf := make([]byte, chunk)
	for n > 0 {
		c := int64(chunk)
		if c > n {
			c = n
		}
		if _, err := w.Write(buf[:c]); err != nil {
			return
		}
		n -= c
	}
}

// LoadResult summarizes one driven workload stream.
type LoadResult struct {
	Latencies []time.Duration
	Errors    int
	Sent      int
}

// Mean returns the mean latency of successful requests.
func (l *LoadResult) Mean() time.Duration { return telemetry.MeanOf(l.Latencies) }

// P99 returns the 99th percentile latency.
func (l *LoadResult) P99() time.Duration { return telemetry.QuantileOf(l.Latencies, 0.99) }

// Drive sends an open-loop constant-rate stream of class requests to a
// cluster's frontend for the given duration and collects end-to-end
// latencies. The class header is attached at the ingress, playing the
// role of the edge gateway's classifier.
func (m *Mesh) Drive(ctx context.Context, class string, cluster topology.ClusterID, rps float64, dur time.Duration) (*LoadResult, error) {
	cl := m.opts.App.Class(class)
	if cl == nil {
		return nil, fmt.Errorf("emul: unknown class %q", class)
	}
	feURL, err := m.FrontendURL(cluster)
	if err != nil {
		return nil, err
	}
	if rps <= 0 {
		return nil, fmt.Errorf("emul: non-positive rate")
	}
	interval := time.Duration(float64(time.Second) / rps)
	deadline := time.Now().Add(dur)

	var (
		mu  sync.Mutex
		res LoadResult
		wg  sync.WaitGroup
	)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	seq := 0
	for now := time.Now(); now.Before(deadline); now = time.Now() {
		seq++
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, cl.Root.Method, feURL+cl.Root.Path, nil)
			if err != nil {
				return
			}
			req.Header.Set(dataplane.HeaderClass, class)
			req.Header.Set(dataplane.HeaderTraceID, strconv.FormatInt(int64(n), 16))
			start := time.Now()
			resp, err := client.Do(req)
			ok := err == nil
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode/100 == 2
			}
			lat := time.Since(start)
			mu.Lock()
			res.Sent++
			if ok {
				res.Latencies = append(res.Latencies, lat)
			} else {
				res.Errors++
			}
			mu.Unlock()
		}(seq)
		select {
		case <-ctx.Done():
			wg.Wait()
			return &res, ctx.Err()
		case <-time.After(interval):
		}
	}
	wg.Wait()
	return &res, nil
}
