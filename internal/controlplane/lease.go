package controlplane

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"github.com/servicelayernetworking/slate/internal/dataplane"
)

// Leader election for the replicated control plane.
//
// The cluster controllers double as lease acceptors: a global replica
// becomes leader by holding a TTL lease from a MAJORITY of registered
// cluster controllers, so two replicas can never both publish (any two
// majorities intersect) and no extra coordination service is needed —
// the voters are exactly the processes that must agree on which leader
// to obey.
//
// The protocol is a lease with Paxos-style promise fencing:
//
//  1. A candidate campaigns with an epoch strictly above every epoch it
//     has seen, POSTing /v1/lease to every cluster controller.
//  2. A cluster grants when the request renews the current holder, or
//     carries a higher epoch and the current lease has expired (or was
//     never granted). Granting epoch E also promises to reject every
//     rule push below E (pubEpoch fence).
//  3. Majority grants → leadership for the TTL; the leader renews well
//     inside the TTL and steps down the moment it loses the majority.
//
// A deposed leader is therefore harmless twice over: its renewals fail
// (a newer epoch holds the lease), and its in-flight publishes bounce
// off the pubEpoch fence with 409 + X-Slate-Reject — including "full
// resync" pushes, which would otherwise overwrite a newer table.

// LeaseRequest is a candidate's lease acquisition or renewal.
type LeaseRequest struct {
	// Candidate identifies the replica — by convention its advertised
	// base URL, so a denied rival (and anyone reading /v1/health) can
	// find the leader without extra discovery.
	Candidate string `json:"candidate"`
	// Epoch is the candidate's proposed lease epoch. Renewals repeat the
	// granted epoch; campaigns must exceed every epoch seen.
	Epoch uint64 `json:"epoch"`
	// TTLMS is the requested lease duration in milliseconds.
	TTLMS int64 `json:"ttl_ms"`
}

// LeaseResponse reports the acceptor's lease state after deciding.
// Denied candidates learn the current holder and epoch from it.
type LeaseResponse struct {
	Granted     bool   `json:"granted"`
	Holder      string `json:"holder,omitempty"`
	Epoch       uint64 `json:"epoch"`
	ExpiresInMS int64  `json:"expires_in_ms"`
}

// handleLease decides one lease acquisition/renewal. Grant rules:
// same holder + same epoch renews; a higher epoch takes over only once
// the current lease has lapsed. Every grant fences pubEpoch forward.
func (c *Cluster) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Candidate == "" || req.Epoch == 0 || req.TTLMS <= 0 {
		http.Error(w, "candidate, epoch and ttl_ms required", http.StatusBadRequest)
		return
	}
	now := c.now()
	ttl := time.Duration(req.TTLMS) * time.Millisecond
	c.mu.Lock()
	granted := false
	switch {
	case req.Candidate == c.leaseHolder && req.Epoch == c.leaseEpoch:
		// Renewal by the current holder.
		c.leaseExpires = now.Add(ttl)
		granted = true
	case req.Epoch > c.leaseEpoch && (c.leaseHolder == "" || !now.Before(c.leaseExpires)):
		// New campaign: the previous lease lapsed (or never existed).
		c.leaseHolder = req.Candidate
		c.leaseEpoch = req.Epoch
		c.leaseExpires = now.Add(ttl)
		granted = true
	}
	if granted && c.leaseEpoch > c.pubEpoch {
		c.pubEpoch = c.leaseEpoch
	}
	resp := LeaseResponse{
		Granted:     granted,
		Holder:      c.leaseHolder,
		Epoch:       c.leaseEpoch,
		ExpiresInMS: c.leaseExpires.Sub(now).Milliseconds(),
	}
	c.mLeaseEpoch.Set(float64(c.leaseEpoch))
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// admitPush enforces the pubEpoch fence on a rule push. It reports
// whether the request is fenced (carried a leader epoch, so CAS rules
// apply) and whether it may proceed; a rejected request has already
// been answered with 409 + X-Slate-Reject: stale-leader.
//
// Once any lease has been granted (pubEpoch > 0), headerless pushes are
// rejected too: under a replicated control plane every legitimate
// publisher states its epoch, so an anonymous push can only be a
// leftover single-controller deployment that must not race the elected
// leader.
func (c *Cluster) admitPush(w http.ResponseWriter, r *http.Request) (fenced, ok bool) {
	hdr := r.Header.Get(dataplane.HeaderLeaderEpoch)
	c.mu.Lock()
	pubEpoch := c.pubEpoch
	if hdr == "" {
		c.mu.Unlock()
		if pubEpoch > 0 {
			c.rejectPush(w, dataplane.RejectStaleLeader, "push without leader epoch on a fenced cluster")
			return false, false
		}
		return false, true
	}
	epoch, err := strconv.ParseUint(hdr, 10, 64)
	if err != nil || epoch < pubEpoch {
		c.mu.Unlock()
		c.rejectPush(w, dataplane.RejectStaleLeader, "leader epoch below fence")
		return true, false
	}
	if epoch > c.pubEpoch {
		c.pubEpoch = epoch
	}
	c.mu.Unlock()
	return true, true
}

// rejectPush answers 409 with the X-Slate-Reject marker that tells the
// pusher to step down instead of resyncing.
func (c *Cluster) rejectPush(w http.ResponseWriter, reason, msg string) {
	c.mStaleRejects.Inc()
	w.Header().Set(dataplane.HeaderReject, reason)
	http.Error(w, msg, http.StatusConflict)
}
