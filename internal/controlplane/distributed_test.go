package controlplane

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// TestFullyDistributedDeployment assembles the deployment shape of
// cmd/slate-global + cmd/slate-cluster + cmd/slate-proxy: every
// component only talks HTTP — proxies push telemetry to and poll rules
// from their cluster controller via dataplane.Agent; cluster
// controllers relay to the global controller; the global controller
// optimizes and pushes tables down. No in-process shortcuts.
func TestFullyDistributedDeployment(t *testing.T) {
	top := topology.TwoClusters(40 * time.Millisecond)
	app := chainApp()
	ctrl, err := core.NewController(top, app, core.ControllerConfig{DemandSmoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGlobal(ctrl)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	type clusterRig struct {
		cc    *Cluster
		ccURL string
	}
	mkCluster := func(id topology.ClusterID) clusterRig {
		cc := NewCluster(id, gsrv.URL)
		srv := httptest.NewServer(cc.Handler())
		t.Cleanup(srv.Close)
		if err := cc.Register(t.Context(), srv.URL); err != nil {
			t.Fatal(err)
		}
		return clusterRig{cc: cc, ccURL: srv.URL}
	}
	west := mkCluster(topology.West)
	east := mkCluster(topology.East)

	// A standalone gateway proxy per cluster, wired only by URL.
	resolver := &memResolver{m: map[string]string{}}
	mkProxy := func(cl topology.ClusterID, ccURL string) (*dataplane.Proxy, *dataplane.Agent) {
		appSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "ok")
		}))
		t.Cleanup(appSrv.Close)
		p, err := dataplane.New(dataplane.Config{
			Service: "gateway", Cluster: cl, LocalApp: appSrv.URL, Resolver: resolver,
		})
		if err != nil {
			t.Fatal(err)
		}
		psrv := httptest.NewServer(p)
		t.Cleanup(psrv.Close)
		resolver.add("gateway", cl, psrv.URL)
		agent, err := dataplane.NewAgent(p, ccURL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return p, agent
	}
	pW, aW := mkProxy(topology.West, west.ccURL)
	_, aE := mkProxy(topology.East, east.ccURL)

	// Simulate one telemetry window: the proxies saw overload-shaped
	// traffic (west hot). Inject via the proxies' own aggregation by
	// issuing classified requests — here we shortcut with direct ingest
	// into the cluster controllers only for volume, while the proxies
	// push their genuine (small) telemetry through their agents.
	west.cc.Ingest([]telemetry.WindowStats{{
		Key: telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.West)},
		RPS: 900, Requests: 900, MeanLatency: 60 * time.Millisecond, Window: time.Second,
	}})
	east.cc.Ingest([]telemetry.WindowStats{{
		Key: telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.East)},
		RPS: 100, Requests: 100, MeanLatency: 20 * time.Millisecond, Window: time.Second,
	}})

	// One control round: agents sync (push + poll), cluster controllers
	// report, global optimizes and pushes down, agents poll the result.
	if err := aW.Sync(t.Context()); err != nil {
		t.Fatalf("west agent: %v", err)
	}
	if err := aE.Sync(t.Context()); err != nil {
		t.Fatalf("east agent: %v", err)
	}
	if err := west.cc.Report(t.Context(), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := east.cc.Report(t.Context(), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := g.Tick(t.Context()); err != nil {
		t.Fatalf("global tick: %v", err)
	}
	if err := aW.Sync(t.Context()); err != nil {
		t.Fatal(err)
	}

	// The west standalone proxy must now hold offload rules, received
	// purely over HTTP.
	if pW.TableVersion() == 0 {
		t.Fatal("west proxy never received rules over the wire")
	}
	d := pW.Table().Lookup("svc-1", "default", topology.West)
	if d.Weight(topology.East) <= 0 {
		t.Errorf("west proxy rule has no offload: %v", d)
	}

	// Global status reflects both clusters and the learned demand.
	resp, err := http.Get(gsrv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := ctrl.Demand()["default"][topology.West]; got < 800 {
		t.Errorf("global demand west = %v, want ~900", got)
	}
}

type memResolver struct {
	mu sync.Mutex
	m  map[string]string
}

func (r *memResolver) add(svc string, cl topology.ClusterID, url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[svc+"@"+string(cl)] = url
}

func (r *memResolver) Resolve(svc string, cl topology.ClusterID) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if u, ok := r.m[svc+"@"+string(cl)]; ok {
		return u, nil
	}
	return "", fmt.Errorf("no %s@%s", svc, cl)
}
