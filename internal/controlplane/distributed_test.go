package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// TestFullyDistributedDeployment assembles the deployment shape of
// cmd/slate-global + cmd/slate-cluster + cmd/slate-proxy: every
// component only talks HTTP — proxies push telemetry to and poll rules
// from their cluster controller via dataplane.Agent; cluster
// controllers relay to the global controller; the global controller
// optimizes and pushes tables down. No in-process shortcuts.
func TestFullyDistributedDeployment(t *testing.T) {
	top := topology.TwoClusters(40 * time.Millisecond)
	app := chainApp()
	ctrl, err := core.NewController(top, app, core.ControllerConfig{DemandSmoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGlobal(ctrl)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	type clusterRig struct {
		cc    *Cluster
		ccURL string
	}
	mkCluster := func(id topology.ClusterID) clusterRig {
		cc := NewCluster(id, gsrv.URL)
		srv := httptest.NewServer(cc.Handler())
		t.Cleanup(srv.Close)
		if err := cc.Register(t.Context(), srv.URL); err != nil {
			t.Fatal(err)
		}
		return clusterRig{cc: cc, ccURL: srv.URL}
	}
	west := mkCluster(topology.West)
	east := mkCluster(topology.East)

	// A standalone gateway proxy per cluster, wired only by URL.
	resolver := &memResolver{m: map[string]string{}}
	mkProxy := func(cl topology.ClusterID, ccURL string) (*dataplane.Proxy, *dataplane.Agent) {
		appSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "ok")
		}))
		t.Cleanup(appSrv.Close)
		p, err := dataplane.New(dataplane.Config{
			Service: "gateway", Cluster: cl, LocalApp: appSrv.URL, Resolver: resolver,
		})
		if err != nil {
			t.Fatal(err)
		}
		psrv := httptest.NewServer(p)
		t.Cleanup(psrv.Close)
		resolver.add("gateway", cl, psrv.URL)
		agent, err := dataplane.NewAgent(p, ccURL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return p, agent
	}
	pW, aW := mkProxy(topology.West, west.ccURL)
	_, aE := mkProxy(topology.East, east.ccURL)

	// Simulate one telemetry window: the proxies saw overload-shaped
	// traffic (west hot). Inject via the proxies' own aggregation by
	// issuing classified requests — here we shortcut with direct ingest
	// into the cluster controllers only for volume, while the proxies
	// push their genuine (small) telemetry through their agents.
	west.cc.Ingest([]telemetry.WindowStats{{
		Key: telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.West)},
		RPS: 900, Requests: 900, MeanLatency: 60 * time.Millisecond, Window: time.Second,
	}})
	east.cc.Ingest([]telemetry.WindowStats{{
		Key: telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.East)},
		RPS: 100, Requests: 100, MeanLatency: 20 * time.Millisecond, Window: time.Second,
	}})

	// One control round: agents sync (push + poll), cluster controllers
	// report, global optimizes and pushes down, agents poll the result.
	if err := aW.Sync(t.Context()); err != nil {
		t.Fatalf("west agent: %v", err)
	}
	if err := aE.Sync(t.Context()); err != nil {
		t.Fatalf("east agent: %v", err)
	}
	if err := west.cc.Report(t.Context(), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := east.cc.Report(t.Context(), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := g.Tick(t.Context()); err != nil {
		t.Fatalf("global tick: %v", err)
	}
	if err := aW.Sync(t.Context()); err != nil {
		t.Fatal(err)
	}

	// The west standalone proxy must now hold offload rules, received
	// purely over HTTP.
	if pW.TableVersion() == 0 {
		t.Fatal("west proxy never received rules over the wire")
	}
	d := pW.Table().Lookup("svc-1", "default", topology.West)
	if d.Weight(topology.East) <= 0 {
		t.Errorf("west proxy rule has no offload: %v", d)
	}

	// Global status reflects both clusters and the learned demand.
	resp, err := http.Get(gsrv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := ctrl.Demand()["default"][topology.West]; got < 800 {
		t.Errorf("global demand west = %v, want ~900", got)
	}
}

type memResolver struct {
	mu sync.Mutex
	m  map[string]string
}

func (r *memResolver) add(svc string, cl topology.ClusterID, url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[svc+"@"+string(cl)] = url
}

func (r *memResolver) Resolve(svc string, cl topology.ClusterID) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if u, ok := r.m[svc+"@"+string(cl)]; ok {
		return u, nil
	}
	return "", fmt.Errorf("no %s@%s", svc, cl)
}

// postRaw posts a JSON body with optional extra headers and returns the
// response (caller closes).
func postRaw(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(t.Context(), http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDeposedLeaderCannotOverwrite is the compare-and-swap safety test:
// once leadership has moved on, nothing a deposed leader does — a
// version-tagged patch, a "full resync" push, or a legacy headerless
// table POST — may ever move a cluster's table backwards.
func TestDeposedLeaderCannotOverwrite(t *testing.T) {
	clk := newVclock()
	const ttl = 10 * time.Second
	top := topology.TwoClusters(40 * time.Millisecond)
	mkReplica := func() (*Global, string) {
		ctrl, err := core.NewController(top, chainApp(), core.ControllerConfig{DemandSmoothing: 1, Decompose: true})
		if err != nil {
			t.Fatal(err)
		}
		g := NewGlobal(ctrl)
		srv := httptest.NewServer(g.Handler())
		t.Cleanup(srv.Close)
		g.EnableHA(srv.URL, HAConfig{LeaseTTL: ttl, EventThreshold: -1})
		g.SetNow(clk.Now)
		return g, srv.URL
	}
	gA, urlA := mkReplica()
	gB, urlB := mkReplica()

	cc := NewCluster(topology.West, "")
	cc.SetNow(clk.Now)
	cc.AddUpstream(urlA)
	cc.AddUpstream(urlB)
	ccsrv := httptest.NewServer(cc.Handler())
	t.Cleanup(ccsrv.Close)
	if err := cc.Register(t.Context(), ccsrv.URL); err != nil {
		t.Fatal(err)
	}

	report := func(rps float64) {
		t.Helper()
		cc.Ingest([]telemetry.WindowStats{{
			Key:      telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.West)},
			RPS:      rps,
			Requests: uint64(rps),
			Window:   time.Second,
		}})
		if err := cc.Report(t.Context(), time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// gA leads at epoch 1 and publishes; gB follows and caches.
	report(900)
	if err := gA.HAStep(t.Context()); err != nil {
		t.Fatalf("gA tick: %v", err)
	}
	if err := gB.HAStep(t.Context()); err != nil {
		t.Fatal(err)
	}
	if !gA.IsLeader() || gB.IsLeader() {
		t.Fatal("want gA leader, gB follower")
	}
	oldTable := cc.Table()
	if oldTable.Version == 0 {
		t.Fatal("gA never published")
	}
	oldJSON, err := json.Marshal(oldTable)
	if err != nil {
		t.Fatal(err)
	}

	// The lease lapses; gB takes over at epoch 2 under shifted demand and
	// publishes a strictly newer table.
	clk.Advance(ttl + time.Second)
	report(500)
	if err := gB.HAStep(t.Context()); err != nil {
		t.Fatalf("gB takeover tick: %v", err)
	}
	if !gB.IsLeader() {
		t.Fatal("gB did not take over")
	}
	newVersion := cc.Table().Version
	if newVersion <= oldTable.Version {
		t.Fatalf("gB's table version %d not newer than %d", newVersion, oldTable.Version)
	}

	// The deposed gA ticks as if nothing happened: its push carries epoch
	// 1 against a pubEpoch-2 fence and must bounce, leaving the table be.
	if err := gA.Tick(t.Context()); err == nil {
		t.Fatal("deposed gA published successfully")
	}
	if gA.IsLeader() {
		t.Fatal("gA did not step down after the fencing rejection")
	}
	if got := cc.Table().Version; got != newVersion {
		t.Fatalf("deposed push moved the table: %d -> %d", newVersion, got)
	}

	// Even with an acceptable epoch, a FULL resync push carrying an older
	// table version is CAS-rejected — full patches apply unconditionally
	// downstream, so the regression must be stopped at the door.
	stale := routing.FullPatch(oldTable)
	staleJSON, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	resp := postRaw(t, ccsrv.URL+"/v1/patch", staleJSON, map[string]string{
		dataplane.HeaderLeaderEpoch: "3",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(dataplane.HeaderReject) != dataplane.RejectCAS {
		t.Fatalf("stale full patch: status %d reject %q, want 409 %q",
			resp.StatusCode, resp.Header.Get(dataplane.HeaderReject), dataplane.RejectCAS)
	}

	// Same for the legacy full-table endpoint.
	resp = postRaw(t, ccsrv.URL+"/v1/rules", oldJSON, map[string]string{
		dataplane.HeaderLeaderEpoch: "3",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(dataplane.HeaderReject) != dataplane.RejectCAS {
		t.Fatalf("stale legacy push: status %d reject %q, want 409 %q",
			resp.StatusCode, resp.Header.Get(dataplane.HeaderReject), dataplane.RejectCAS)
	}

	// A headerless push on a fenced cluster is rejected outright: every
	// legitimate publisher in a replicated deployment states its epoch.
	resp = postRaw(t, ccsrv.URL+"/v1/rules", oldJSON, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(dataplane.HeaderReject) != dataplane.RejectStaleLeader {
		t.Fatalf("headerless push: status %d reject %q, want 409 %q",
			resp.StatusCode, resp.Header.Get(dataplane.HeaderReject), dataplane.RejectStaleLeader)
	}

	if got := cc.Table().Version; got != newVersion {
		t.Fatalf("stale pushes moved the table: %d -> %d", newVersion, got)
	}
}
