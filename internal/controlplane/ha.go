package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/dataplane"
)

// Replicated global controller. EnableHA turns a Global from "the one
// process ticking on a timer" into one replica of N:
//
//   - Leadership: each HAStep the replica campaigns for (or renews) a
//     TTL lease held by a majority of cluster controllers (lease.go).
//     Only the leader runs optimization ticks and publishes tables.
//   - Warm handoff: followers poll the leader's GET /v1/snapshot and
//     cache its warm state (simplex bases, fingerprints, forecast
//     state, search incumbents). A follower that wins an election
//     restores the cache and resumes exactly where the deposed leader
//     left off — bit-identical table, warm solves — instead of paying
//     a cold-solve storm at the worst possible moment.
//   - Event-driven re-solve: telemetry reports whose per-cluster load
//     moves beyond EventThreshold arm an immediate re-solve instead of
//     waiting out the sync period. A token bucket (EventBurst tokens,
//     one refilled per scheduled step) bounds the extra solve rate, and
//     shard fingerprints already confine the work to dirty shards.
//
// Everything steps through HAStep, which is synchronous and
// deterministic given the acceptors' responses — the wall-clock RunHA
// loop and the virtual-time chaos harness drive the same code.

// HAConfig tunes one replica. Zero values get defaults.
type HAConfig struct {
	// LeaseTTL is the leader lease duration (default 2×period is a good
	// choice; absolute default 10s). Failover time is bounded by the
	// TTL: a dead leader's lease must lapse before a rival can win.
	LeaseTTL time.Duration
	// EventThreshold is the relative per-cluster load change that arms
	// an immediate re-solve (default 0.25; a cluster going 0→nonzero
	// always arms). Negative disables event-driven re-solves.
	EventThreshold float64
	// EventBurst caps banked event-solve tokens (default 2).
	EventBurst int
}

func (c HAConfig) withDefaults() HAConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.EventThreshold == 0 { //slate:nolint floatcmp -- exact zero is the unset sentinel; disabling is expressed as a negative threshold
		c.EventThreshold = 0.25
	}
	if c.EventBurst <= 0 {
		c.EventBurst = 2
	}
	return c
}

// EnableHA makes this Global one replica of a replicated control
// plane. replica is its advertised base URL (doubling as its identity
// in lease requests, so rivals and operators can find the leader).
// Call before Handler/Run/RunHA.
func (g *Global) EnableHA(replica string, cfg HAConfig) {
	cfg = cfg.withDefaults()
	g.mu.Lock()
	g.haEnabled = true
	g.replica = replica
	g.haCfg = cfg
	g.eventTokens = cfg.EventBurst
	g.mu.Unlock()
}

// SetNow swaps the replica's clock (deterministic harnesses, tests).
func (g *Global) SetNow(f func() time.Time) {
	g.mu.Lock()
	g.now = f
	g.mu.Unlock()
}

// IsLeader reports whether this replica currently holds the lease
// majority (always true without EnableHA — a single controller is its
// own leader).
func (g *Global) IsLeader() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.haEnabled || g.isLeader
}

// LeaderURL returns the best known leader address: this replica when
// leading, otherwise the holder reported by the lease acceptors ("" if
// unknown).
func (g *Global) LeaderURL() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.haEnabled || g.isLeader {
		return g.replica
	}
	return g.leaderURL
}

// LeaseEpoch returns the replica's current lease epoch (0 before any
// campaign).
func (g *Global) LeaseEpoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaseEpoch
}

// HAStep runs one replica step: campaign or renew the lease; as leader,
// refill one event token and run a full optimization tick; as follower,
// refresh the cached leader snapshot. Without EnableHA it degenerates
// to a plain Tick, so callers can drive both modes identically.
func (g *Global) HAStep(ctx context.Context) error {
	g.mu.Lock()
	enabled := g.haEnabled
	g.mu.Unlock()
	if !enabled {
		return g.Tick(ctx)
	}
	g.campaign(ctx)
	g.mu.Lock()
	leader := g.isLeader
	if leader && g.eventTokens < g.haCfg.EventBurst {
		g.eventTokens++
	}
	g.mu.Unlock()
	if leader {
		return g.Tick(ctx)
	}
	g.fetchSnapshot(ctx)
	return nil
}

// campaign acquires or renews the lease from every registered cluster
// controller (in sorted order, for determinism) and updates leadership:
// majority grants → leader; otherwise step down and remember the
// holder the acceptors reported. With no clusters registered yet the
// replica trivially leads (single-node and bootstrap case).
func (g *Global) campaign(ctx context.Context) {
	g.mu.Lock()
	type acceptor struct {
		id  string
		url string
	}
	accs := make([]acceptor, 0, len(g.clusters))
	for c, u := range g.clusters {
		accs = append(accs, acceptor{id: string(c), url: u})
	}
	sort.Slice(accs, func(i, j int) bool { return accs[i].id < accs[j].id })
	epoch := g.leaseEpoch
	if !g.isLeader {
		epoch = g.maxSeenEpoch + 1
	}
	req := LeaseRequest{Candidate: g.replica, Epoch: epoch, TTLMS: g.haCfg.LeaseTTL.Milliseconds()}
	g.mu.Unlock()

	granted := 0
	var rivalEpoch uint64
	var rivalHolder string
	for _, a := range accs {
		resp, err := g.requestLease(ctx, a.url, req)
		if err != nil {
			continue // unreachable acceptor counts as a denial
		}
		if resp.Granted {
			granted++
		} else if resp.Epoch > rivalEpoch {
			rivalEpoch = resp.Epoch
			rivalHolder = resp.Holder
		}
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if rivalEpoch > g.maxSeenEpoch {
		g.maxSeenEpoch = rivalEpoch
	}
	won := len(accs) == 0 || granted*2 > len(accs)
	if won {
		justWon := !g.isLeader
		g.isLeader = true
		g.leaseEpoch = epoch
		if epoch > g.maxSeenEpoch {
			g.maxSeenEpoch = epoch
		}
		g.leaderURL = g.replica
		g.mLeader.Set(1)
		g.mLeaseEpoch.Set(float64(epoch))
		if justWon {
			g.mFailovers.Inc()
			g.restoreFromCacheLocked()
		}
		return
	}
	g.isLeader = false
	g.mLeader.Set(0)
	if rivalHolder != "" && rivalHolder != g.replica {
		g.leaderURL = rivalHolder
	}
}

// restoreFromCacheLocked installs the cached leader snapshot on an
// election win, if it is ahead of this replica's own state. Caller
// holds g.mu.
func (g *Global) restoreFromCacheLocked() {
	snap := g.snapCache
	if snap == nil || snap.Version <= g.ctrl.Version() {
		return
	}
	if err := g.ctrl.Restore(snap); err != nil {
		g.lastErr = fmt.Sprintf("restore snapshot v%d: %v", snap.Version, err)
		return
	}
	g.mSnapRestores.Inc()
	g.mTableVer.Set(float64(g.ctrl.Table().Version))
}

// requestLease POSTs one lease request and decodes the decision.
func (g *Global) requestLease(ctx context.Context, acceptorURL string, req LeaseRequest) (*LeaseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, acceptorURL+"/v1/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return nil, statusError{code: resp.StatusCode}
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, err
	}
	return &lr, nil
}

// fetchSnapshot refreshes the follower's cached copy of the leader's
// warm state. Failures are tolerated — the cache just stays at its
// previous (still warm, slightly older) version.
func (g *Global) fetchSnapshot(ctx context.Context) {
	g.mu.Lock()
	leader := g.leaderURL
	self := g.replica
	g.mu.Unlock()
	if leader == "" || leader == self {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+"/v1/snapshot", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var snap core.ControllerSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return
	}
	g.mu.Lock()
	if g.snapCache == nil || snap.Version >= g.snapCache.Version {
		g.snapCache = &snap
		g.mSnapFetches.Inc()
	}
	g.mu.Unlock()
}

// stepDown relinquishes leadership after a fencing rejection: some
// acceptor has promised a higher epoch, so this replica's lease view is
// stale. The next HAStep campaigns fresh (and may legitimately win
// again with a higher epoch).
func (g *Global) stepDown(reason string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.haEnabled || !g.isLeader {
		return
	}
	g.isLeader = false
	g.lastErr = "stepped down: " + reason
	g.mLeader.Set(0)
	g.mStepDowns.Inc()
}

// publisherHeaders returns the fencing headers stamped on rule pushes,
// nil when not replicated (legacy single-controller pushes stay
// headerless).
func (g *Global) publisherHeaders() map[string]string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.haEnabled {
		return nil
	}
	return map[string]string{
		dataplane.HeaderLeaderEpoch: fmt.Sprintf("%d", g.leaseEpoch),
		dataplane.HeaderLeader:      g.replica,
	}
}

// TryEventSolve runs an immediate re-solve if one is armed and a token
// is available (leader only). It reports whether a solve ran. The
// wall-clock RunHA loop calls it when the event channel fires; the
// deterministic harness calls it directly between windows.
func (g *Global) TryEventSolve(ctx context.Context) bool {
	g.mu.Lock()
	if (g.haEnabled && !g.isLeader) || !g.eventArmed || g.eventTokens <= 0 {
		g.mu.Unlock()
		return false
	}
	g.eventArmed = false
	g.eventTokens--
	g.mu.Unlock()
	g.mEventSolves.Inc()
	g.Tick(ctx) // errors surface via /v1/status, like scheduled ticks
	return true
}

// RunHA is the replicated counterpart of Run: a scheduled HAStep every
// period, plus immediate event-driven re-solves between steps.
func (g *Global) RunHA(ctx context.Context, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.HAStep(ctx) // errors surface via /v1/status
		case <-g.eventCh:
			g.TryEventSolve(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// noteClusterLoad feeds breach detection with one cluster's
// reconstructed total RPS. On a relative swing beyond EventThreshold
// (or a silent cluster stirring) it arms an event re-solve and nudges
// the RunHA loop.
func (g *Global) noteClusterLoad(last, cur float64) {
	g.mu.Lock()
	th := g.haCfg.EventThreshold
	enabled := g.haEnabled
	g.mu.Unlock()
	if !enabled || th < 0 {
		return
	}
	breach := false
	switch {
	case last == 0: //slate:nolint floatcmp -- exact zero means no prior load; any nonzero arrival is a breach by definition
		breach = cur > 0
	default:
		diff := cur - last
		if diff < 0 {
			diff = -diff
		}
		breach = diff > th*last
	}
	if !breach {
		return
	}
	g.mEventBreaches.Inc()
	g.mu.Lock()
	g.eventArmed = true
	g.mu.Unlock()
	select {
	case g.eventCh <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// GlobalHealth is the global replica's health snapshot, served at
// GET /v1/health.
type GlobalHealth struct {
	Replica string `json:"replica,omitempty"`
	// Role is "single" without EnableHA, else "leader" or "follower".
	Role         string `json:"role"`
	LeaderURL    string `json:"leader_url,omitempty"`
	LeaseEpoch   uint64 `json:"lease_epoch"`
	TableVersion uint64 `json:"table_version"`
	Ticks        uint64 `json:"ticks"`
	LastError    string `json:"last_error,omitempty"`
}

func (g *Global) handleHealth(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	h := GlobalHealth{
		Replica:      g.replica,
		Role:         "single",
		LeaderURL:    g.leaderURL,
		LeaseEpoch:   g.leaseEpoch,
		TableVersion: g.ctrl.Table().Version,
		Ticks:        g.ticks,
		LastError:    g.lastErr,
	}
	if g.haEnabled {
		if g.isLeader {
			h.Role = "leader"
			h.LeaderURL = g.replica
		} else {
			h.Role = "follower"
		}
	}
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// handleSnapshot serves the controller's warm state for follower
// replicas (and operators taking a state backup).
func (g *Global) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	snap := g.ctrl.Snapshot()
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}
