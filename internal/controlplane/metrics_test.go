package controlplane

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// scrape GETs a daemon's Prometheus exposition and returns the text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + obs.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", obs.MetricsPath, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not the Prometheus text format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// counterValue extracts one series value from exposition text. The
// daemons share obs.Default(), so tests compare before/after deltas
// rather than absolute values.
func counterValue(t *testing.T, text, series string) uint64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " ([0-9]+)$")
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %q not in exposition:\n%s", series, text)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestGlobalServesPrometheusExposition checks the global controller's
// /metrics/prom endpoint and that telemetry ingest moves its counters.
func TestGlobalServesPrometheusExposition(t *testing.T) {
	_, srv := newGlobalServer(t)
	before := counterValue(t, scrape(t, srv.URL), "slate_global_reports_total")

	resp := postJSONReq(t, srv.URL+"/v1/metrics", MetricsReport{
		Cluster: topology.West, WindowMS: 1000, Stats: feStats(900, 100),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	drain(resp)

	after := counterValue(t, scrape(t, srv.URL), "slate_global_reports_total")
	if after != before+1 {
		t.Fatalf("slate_global_reports_total went %d -> %d, want +1", before, after)
	}
}

// TestClusterServesPrometheusExposition checks the cluster controller's
// /metrics/prom endpoint: rule pushes bump the table-version gauge and
// telemetry pushes bump the cluster-labeled ingest counter.
func TestClusterServesPrometheusExposition(t *testing.T) {
	c := NewCluster("obs-test", "")
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)

	series := `slate_cluster_ingested_batches_total{cluster="obs-test"}`
	before := counterValue(t, scrape(t, srv.URL), series)

	resp, err := http.Post(srv.URL+"/v1/metrics", "application/json", strings.NewReader(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("telemetry push status = %d", resp.StatusCode)
	}

	text := scrape(t, srv.URL)
	if got := counterValue(t, text, series); got != before+1 {
		t.Fatalf("%s went %d -> %d, want +1", series, before, got)
	}
	if !strings.Contains(text, `slate_cluster_table_version{cluster="obs-test"}`) {
		t.Fatalf("exposition missing table-version gauge:\n%s", text)
	}
}
