package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// TestSnapshotIngestDeterministicOrder feeds identical reports to two
// fresh globals and asserts snapshotIngest reconstructs identical,
// sorted window groups. The merged windows seed float-averaging demand
// estimation, so group and window order must not leak map iteration
// order into the optimizer input (the detorder analyzer guards the
// pattern; this pins the behavior).
func TestSnapshotIngestDeterministicOrder(t *testing.T) {
	build := func() [][]telemetry.WindowStats {
		g, srv := newGlobalServer(t)
		for _, cl := range []topology.ClusterID{"zeta", "alpha", topology.West, topology.East} {
			var stats []telemetry.WindowStats
			for i := 0; i < 24; i++ {
				stats = append(stats, telemetry.WindowStats{
					Key: telemetry.MetricKey{
						Service: fmt.Sprintf("svc-%02d", i%7),
						Class:   fmt.Sprintf("c%d", i%3),
						Cluster: string(cl),
					},
					RPS:      float64(i + 1),
					Requests: uint64(i + 1),
				})
			}
			resp := postJSONReq(t, srv.URL+"/v1/metrics", MetricsReport{
				Cluster: cl, WindowMS: 1000, Stats: stats,
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("metrics status = %d for %s", resp.StatusCode, cl)
			}
			drain(resp)
		}
		return g.snapshotIngest()
	}

	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshotIngest not deterministic across identical ingests:\n%v\n%v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("got %d groups, want 4", len(a))
	}
	for gi, group := range a {
		for i := 1; i < len(group); i++ {
			if lessMetricKey(group[i].Key, group[i-1].Key) {
				t.Errorf("group %d not sorted at %d: %v after %v", gi, i, group[i].Key, group[i-1].Key)
			}
		}
	}
}

// TestStatusClustersSorted pins the wire-visible cluster list order in
// GET /v1/status regardless of registration order.
func TestStatusClustersSorted(t *testing.T) {
	_, srv := newGlobalServer(t)
	for _, cl := range []topology.ClusterID{"west", "apex", "mid", "zed", "east"} {
		resp := postJSONReq(t, srv.URL+"/v1/register", RegisterRequest{Cluster: cl, URL: "http://127.0.0.1:1"})
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("register status = %d", resp.StatusCode)
		}
		drain(resp)
	}
	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := []topology.ClusterID{"apex", "east", "mid", "west", "zed"}
	if !reflect.DeepEqual(st.Clusters, want) {
		t.Errorf("status clusters = %v, want sorted %v", st.Clusters, want)
	}
}
