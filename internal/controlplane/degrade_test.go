package controlplane

// Tests for the cluster controller's graceful-degradation behaviour:
// tracking silent proxies and excluding stale pushed telemetry from
// the global snapshot.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1_700_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func oneWindow(svc string, reqs uint64) []telemetry.WindowStats {
	return []telemetry.WindowStats{{
		Key:      telemetry.MetricKey{Service: svc, Class: "*", Cluster: "west"},
		Window:   time.Second,
		Requests: reqs,
		RPS:      float64(reqs),
	}}
}

func TestCollectExcludesStaleIngestedWindows(t *testing.T) {
	clock := newTestClock()
	cc := NewCluster(topology.West, "")
	cc.now = clock.Now
	cc.SetStaleAfter(10 * time.Second)

	cc.IngestFrom("old@west", oneWindow("old", 5))
	clock.Advance(30 * time.Second)
	cc.IngestFrom("new@west", oneWindow("new", 3))

	merged := cc.Collect(time.Second)
	for _, ws := range merged {
		if ws.Key.Service == "old" {
			t.Errorf("stale batch leaked into the snapshot: %+v", ws)
		}
	}
	var seen bool
	for _, ws := range merged {
		if ws.Key.Service == "new" && ws.Requests == 3 {
			seen = true
		}
	}
	if !seen {
		t.Errorf("fresh batch missing from snapshot: %+v", merged)
	}
	if got := cc.ExcludedStaleWindows(); got != 1 {
		t.Errorf("excluded windows = %d, want 1", got)
	}
}

func TestCollectKeepsEverythingWithoutStaleBound(t *testing.T) {
	clock := newTestClock()
	cc := NewCluster(topology.West, "")
	cc.now = clock.Now

	cc.IngestFrom("a@west", oneWindow("a", 5))
	clock.Advance(time.Hour)
	merged := cc.Collect(time.Second)
	if len(merged) != 1 || merged[0].Requests != 5 {
		t.Errorf("unbounded controller dropped telemetry: %+v", merged)
	}
	if len(cc.MissingProxies()) != 0 {
		t.Error("missing proxies reported with staleness disabled")
	}
}

func TestMissingProxiesMarkedAndRecovered(t *testing.T) {
	clock := newTestClock()
	cc := NewCluster(topology.West, "")
	cc.now = clock.Now
	cc.SetStaleAfter(10 * time.Second)

	cc.IngestFrom("alive@west", oneWindow("alive", 1))
	cc.IngestFrom("silent@west", oneWindow("silent", 1))
	cc.Collect(time.Second)
	if got := cc.MissingProxies(); len(got) != 0 {
		t.Fatalf("missing = %v right after both reported", got)
	}

	// Only one proxy keeps reporting.
	clock.Advance(15 * time.Second)
	cc.IngestFrom("alive@west", oneWindow("alive", 1))
	cc.Collect(time.Second)
	if got := cc.MissingProxies(); len(got) != 1 || got[0] != "silent@west" {
		t.Fatalf("missing = %v, want [silent@west]", got)
	}

	// The silent proxy returns.
	cc.IngestFrom("silent@west", oneWindow("silent", 1))
	cc.Collect(time.Second)
	if got := cc.MissingProxies(); len(got) != 0 {
		t.Fatalf("missing = %v after recovery, want none", got)
	}
}

func TestHandleMetricsRecordsSourceHeader(t *testing.T) {
	clock := newTestClock()
	cc := NewCluster(topology.West, "")
	cc.now = clock.Now
	cc.SetStaleAfter(10 * time.Second)
	srv := httptest.NewServer(cc.Handler())
	defer srv.Close()

	body, _ := json.Marshal(oneWindow("svc", 2))
	req, err := http.NewRequestWithContext(t.Context(), http.MethodPost, srv.URL+"/v1/metrics", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(dataplane.HeaderSource, "svc@west")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	clock.Advance(15 * time.Second)
	cc.Collect(time.Second)
	if got := cc.MissingProxies(); len(got) != 1 || got[0] != "svc@west" {
		t.Errorf("missing = %v, want [svc@west]; source header not recorded", got)
	}
}

func TestHealthEndpoint(t *testing.T) {
	clock := newTestClock()
	cc := NewCluster(topology.West, "")
	cc.now = clock.Now
	cc.SetStaleAfter(10 * time.Second)
	srv := httptest.NewServer(cc.Handler())
	defer srv.Close()

	cc.IngestFrom("gone@west", oneWindow("gone", 1))
	clock.Advance(20 * time.Second)
	cc.Collect(time.Second)

	req, err := http.NewRequestWithContext(t.Context(), http.MethodGet, srv.URL+"/v1/health", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cluster != topology.West {
		t.Errorf("health cluster = %q", h.Cluster)
	}
	if len(h.MissingProxies) != 1 || !strings.HasPrefix(h.MissingProxies[0], "gone@") {
		t.Errorf("health missing = %v", h.MissingProxies)
	}
	if h.ExcludedStale != 1 {
		t.Errorf("health excluded = %d, want 1", h.ExcludedStale)
	}
}
