package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// ingestGroup is one externally pushed telemetry batch, stamped with
// the pushing proxy's identity and arrival time so stale batches can
// be excluded from the upstream snapshot.
type ingestGroup struct {
	source string // "service@cluster" from X-Slate-Source, or ""
	at     time.Time
	stats  []telemetry.WindowStats
}

// Cluster is the Cluster Controller daemon for one cluster: it
// aggregates telemetry from the cluster's SLATE-proxies, tags it with
// the cluster ID (instances don't know which cluster they belong to —
// paper §3.2), relays it to the Global Controller, and fans rule pushes
// out to every proxy.
//
// Graceful degradation: pushing proxies identify themselves via the
// X-Slate-Source header; the controller remembers when each source was
// last heard from. With a staleness bound set (SetStaleAfter), Collect
// excludes buffered batches older than the bound from the global
// snapshot — a re-delivered backlog from a long-dead agent must not
// masquerade as current load — and marks sources that have gone silent
// (MissingProxies, also served at GET /v1/health).
type Cluster struct {
	id topology.ClusterID

	mu         sync.Mutex
	proxies    []*dataplane.Proxy
	ingested   []ingestGroup
	sources    map[string]time.Time
	missing    []string
	excluded   int
	staleAfter time.Duration
	last       []telemetry.WindowStats
	table      *routing.Table
	history    []*routing.Table // superseded tables, oldest first

	// ups are the global-controller replicas this cluster reports to.
	// Each carries its own delta-report state (last acked window, report
	// epoch, full-resync flag) so replicas reconstruct windows
	// independently and a failover lands on a warm ingest.
	ups []*upstream

	// Leader-lease acceptor state. Global replicas contend for leadership
	// by acquiring a TTL lease from a majority of cluster controllers;
	// this cluster remembers who holds its vote and until when. pubEpoch
	// fences rule pushes (Paxos-promise style): granting a lease at epoch
	// E commits this cluster to rejecting any push with an epoch below E,
	// so a deposed leader's stale table can never land here — even as a
	// "full resync" — regardless of message reordering.
	leaseHolder  string
	leaseEpoch   uint64
	leaseExpires time.Time
	pubEpoch     uint64

	client *http.Client
	now    func() time.Time

	metricsH      http.Handler
	mIngested     *obs.Counter
	mIngestErrs   *obs.Counter
	mReports      *obs.Counter
	mReportErrs   *obs.Counter
	mExcluded     *obs.Counter
	mPatches      *obs.Counter
	mPatchGaps    *obs.Counter
	mStaleRejects *obs.Counter
	mLeaseEpoch   *obs.Gauge
	mMissing      *obs.Gauge
	mTableVer     *obs.Gauge
}

// upstream is one global-controller replica this cluster reports to,
// with its private delta-report state.
type upstream struct {
	url        string
	lastReport []telemetry.WindowStats
	epoch      uint64
	needFull   bool
}

// tableHistoryCap bounds how many superseded tables the controller
// keeps to answer GET /v1/rules?since=N with a patch instead of a full
// table. Pollers further behind get a full patch.
const tableHistoryCap = 8

// NewCluster returns a cluster controller reporting to globalURL (may
// be empty for in-process wiring where the caller pumps telemetry
// itself). Metrics register into obs.Default(), labeled by cluster.
func NewCluster(id topology.ClusterID, globalURL string) *Cluster {
	reg := obs.Default()
	cl := string(id)
	c := &Cluster{
		id:       id,
		sources:  make(map[string]time.Time),
		table:    routing.EmptyTable(),
		client:   &http.Client{Timeout: 10 * time.Second},
		now:      time.Now,
		metricsH: reg.Handler(),
		mIngested: reg.CounterVec("slate_cluster_ingested_batches_total",
			"Telemetry batches accepted from local proxies.", "cluster").With(cl),
		mIngestErrs: reg.CounterVec("slate_cluster_ingest_errors_total",
			"Telemetry pushes rejected as malformed.", "cluster").With(cl),
		mReports: reg.CounterVec("slate_cluster_reports_total",
			"Window reports uploaded to the global controller.", "cluster").With(cl),
		mReportErrs: reg.CounterVec("slate_cluster_report_errors_total",
			"Window reports that failed to reach the global controller.", "cluster").With(cl),
		mExcluded: reg.CounterVec("slate_cluster_excluded_stale_windows_total",
			"Pushed batches excluded from the global snapshot as stale.", "cluster").With(cl),
		mPatches: reg.CounterVec("slate_cluster_patches_applied_total",
			"Incremental rule patches applied.", "cluster").With(cl),
		mPatchGaps: reg.CounterVec("slate_cluster_patch_gaps_total",
			"Rule patches rejected for a version gap (answered 409).", "cluster").With(cl),
		mStaleRejects: reg.CounterVec("slate_cluster_stale_pushes_rejected_total",
			"Rule pushes rejected as fenced: stale leader epoch or older table version.", "cluster").With(cl),
		mLeaseEpoch: reg.GaugeVec("slate_cluster_lease_epoch",
			"Leader-lease epoch this cluster last granted.", "cluster").With(cl),
		mMissing: reg.GaugeVec("slate_cluster_missing_proxies",
			"Proxies silent past the staleness bound as of the last Collect.", "cluster").With(cl),
		mTableVer: reg.GaugeVec("slate_cluster_table_version",
			"Version of the routing table last applied.", "cluster").With(cl),
	}
	if globalURL != "" {
		c.ups = append(c.ups, &upstream{url: globalURL})
	}
	return c
}

// AddUpstream registers one more global-controller replica to report
// to. Every upstream receives the same telemetry with independent delta
// state; duplicates are ignored.
func (c *Cluster) AddUpstream(url string) {
	if url == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, up := range c.ups {
		if up.url == url {
			return
		}
	}
	c.ups = append(c.ups, &upstream{url: url})
}

// SetNow swaps the controller's clock (deterministic harnesses, tests).
func (c *Cluster) SetNow(f func() time.Time) {
	c.mu.Lock()
	c.now = f
	c.mu.Unlock()
}

// SetTransport swaps the HTTP transport used for upstream RPCs (fault
// injection, tests). Call before Run.
func (c *Cluster) SetTransport(rt http.RoundTripper) {
	c.client.Transport = rt
}

// SetStaleAfter bounds telemetry staleness: Collect excludes pushed
// batches older than d and marks sources silent for longer than d as
// missing. Zero (the default) disables both.
func (c *Cluster) SetStaleAfter(d time.Duration) {
	c.mu.Lock()
	c.staleAfter = d
	c.mu.Unlock()
}

// ID returns the controller's cluster.
func (c *Cluster) ID() topology.ClusterID { return c.id }

// AddProxy registers a local sidecar for telemetry collection and rule
// distribution.
func (c *Cluster) AddProxy(p *dataplane.Proxy) {
	c.mu.Lock()
	c.proxies = append(c.proxies, p)
	p.SetTable(c.table)
	c.mu.Unlock()
}

// Handler returns the daemon's HTTP API.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rules", c.handleRules)
	mux.HandleFunc("POST /v1/patch", c.handlePatch)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("GET /v1/rules", c.handleGetRules)
	mux.HandleFunc("POST /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /v1/health", c.handleHealth)
	mux.Handle("GET "+obs.MetricsPath, c.metricsH)
	return mux
}

// handleGetRules serves routing rules to out-of-process proxies that
// poll (in-process proxies get pushes via AddProxy). Without a query it
// returns the full table; with ?since=N it returns a routing.Patch from
// version N — empty when the poller is current, computed from the table
// history when the base is still remembered, and a full patch
// otherwise.
func (c *Cluster) handleGetRules(w http.ResponseWriter, r *http.Request) {
	sinceStr := r.URL.Query().Get("since")
	c.mu.Lock()
	pubEpoch := c.pubEpoch
	c.mu.Unlock()
	if pubEpoch > 0 {
		// Advertise the fenced leader epoch so agents can detect a
		// failover and resync rather than trust a raced incremental poll.
		w.Header().Set(dataplane.HeaderLeaderEpoch, strconv.FormatUint(pubEpoch, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	if sinceStr == "" {
		json.NewEncoder(w).Encode(c.Table())
		return
	}
	since, err := strconv.ParseUint(sinceStr, 10, 64)
	if err != nil {
		http.Error(w, "since must be a table version", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	cur := c.table
	var base *routing.Table
	if since == cur.Version {
		base = cur
	} else {
		for _, old := range c.history {
			if old.Version == since {
				base = old
				break
			}
		}
	}
	c.mu.Unlock()
	var p *routing.Patch
	if base != nil {
		p = routing.MakePatch(base, cur)
	} else {
		p = routing.FullPatch(cur)
	}
	json.NewEncoder(w).Encode(p)
}

// handleMetrics accepts telemetry pushed by out-of-process proxies (the
// standalone slate-cluster daemon path; in-process proxies are pulled
// via AddProxy instead).
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var stats []telemetry.WindowStats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		c.mIngestErrs.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.IngestFrom(r.Header.Get(dataplane.HeaderSource), stats)
	w.WriteHeader(http.StatusAccepted)
}

// Ingest buffers externally pushed telemetry for the next Report,
// without a source identity.
func (c *Cluster) Ingest(stats []telemetry.WindowStats) {
	c.IngestFrom("", stats)
}

// IngestFrom buffers externally pushed telemetry for the next Report
// and records when the pushing proxy was last heard from.
func (c *Cluster) IngestFrom(source string, stats []telemetry.WindowStats) {
	now := c.now()
	c.mu.Lock()
	c.ingested = append(c.ingested, ingestGroup{source: source, at: now, stats: stats})
	if source != "" {
		c.sources[source] = now
	}
	c.mu.Unlock()
	c.mIngested.Inc()
}

// MissingProxies returns the sources that had not reported within the
// staleness bound as of the last Collect, sorted.
func (c *Cluster) MissingProxies() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.missing...)
}

// ExcludedStaleWindows returns how many pushed batches Collect has
// excluded as stale since the controller started.
func (c *Cluster) ExcludedStaleWindows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.excluded
}

// Health is the cluster controller's degradation snapshot, served at
// GET /v1/health.
type Health struct {
	Cluster        topology.ClusterID `json:"cluster"`
	TableVersion   uint64             `json:"table_version"`
	MissingProxies []string           `json:"missing_proxies,omitempty"`
	ExcludedStale  int                `json:"excluded_stale_windows"`
	// LeaderURL and LeaderEpoch describe the global replica holding
	// this cluster's leader-lease vote ("" / 0 without a replicated
	// control plane). PubEpoch is the fence: pushes below it are
	// rejected as coming from a deposed leader.
	LeaderURL   string `json:"leader_url,omitempty"`
	LeaderEpoch uint64 `json:"leader_epoch,omitempty"`
	PubEpoch    uint64 `json:"pub_epoch,omitempty"`
}

func (c *Cluster) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	h := Health{
		Cluster:        c.id,
		TableVersion:   c.table.Version,
		MissingProxies: append([]string(nil), c.missing...),
		ExcludedStale:  c.excluded,
		LeaderURL:      c.leaseHolder,
		LeaderEpoch:    c.leaseEpoch,
		PubEpoch:       c.pubEpoch,
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (c *Cluster) handleRules(w http.ResponseWriter, r *http.Request) {
	fenced, ok := c.admitPush(w, r)
	if !ok {
		return
	}
	var table routing.Table
	if err := json.NewDecoder(r.Body).Decode(&table); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if fenced && table.Version < c.Table().Version {
		// CAS: under a replicated control plane a full-table push may
		// never move the table backwards (equal versions are idempotent
		// re-pushes and fine).
		c.rejectPush(w, dataplane.RejectCAS, "table version regression")
		return
	}
	c.ApplyTable(&table)
	w.WriteHeader(http.StatusNoContent)
}

// handlePatch applies an incremental rule push from the global
// controller. A version gap (this controller restarted, or a push went
// missing) answers 409, which makes the global resend a full patch.
func (c *Cluster) handlePatch(w http.ResponseWriter, r *http.Request) {
	fenced, ok := c.admitPush(w, r)
	if !ok {
		return
	}
	var p routing.Patch
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if fenced && p.Full && p.Version < c.Table().Version {
		// CAS: a full (resync) patch applies unconditionally downstream,
		// so a version regression must be stopped here.
		c.rejectPush(w, dataplane.RejectCAS, "table version regression")
		return
	}
	if err := c.ApplyPatch(&p); err != nil {
		if errors.Is(err, routing.ErrVersionGap) {
			c.mPatchGaps.Inc()
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Cluster) handleStats(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	stats := c.last
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// ApplyTable distributes a routing table to every registered proxy.
func (c *Cluster) ApplyTable(t *routing.Table) {
	c.mu.Lock()
	c.recordHistory(c.table)
	c.table = t
	proxies := append([]*dataplane.Proxy(nil), c.proxies...)
	c.mu.Unlock()
	c.mTableVer.Set(float64(t.Version))
	for _, p := range proxies {
		p.SetTable(t)
	}
}

// ApplyPatch applies an incremental rule push atomically: the new table
// is built from the patch and, only if that succeeds, swapped in and
// fanned out to every proxy. Even a no-op patch fans out — the push
// confirms the table version and renews the proxies' staleness TTL.
func (c *Cluster) ApplyPatch(p *routing.Patch) error {
	c.mu.Lock()
	next, err := c.table.Apply(p)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.recordHistory(c.table)
	c.table = next
	proxies := append([]*dataplane.Proxy(nil), c.proxies...)
	c.mu.Unlock()
	c.mPatches.Inc()
	c.mTableVer.Set(float64(next.Version))
	for _, pr := range proxies {
		pr.SetTable(next)
	}
	return nil
}

// recordHistory remembers a superseded table (bounded ring) so
// ?since=N polls can be answered with a patch. Caller holds c.mu.
func (c *Cluster) recordHistory(old *routing.Table) {
	if old == nil {
		return
	}
	c.history = append(c.history, old)
	if len(c.history) > tableHistoryCap {
		c.history = c.history[len(c.history)-tableHistoryCap:]
	}
}

// LastStats returns the most recently collected window (for
// introspection; also served at GET /v1/stats).
func (c *Cluster) LastStats() []telemetry.WindowStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Table returns the last applied routing table.
func (c *Cluster) Table() *routing.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table
}

// Collect flushes every proxy's telemetry for the window, merges it,
// and stamps the cluster ID onto every key (the proxies already tag
// their own cluster, but the controller is authoritative — a proxy
// cannot know its cluster in a real deployment).
//
// With a staleness bound set, pushed batches that sat in the buffer
// longer than the bound are excluded from the merge — stale load data
// in the global snapshot is worse than missing data, because the
// optimizer would steer current traffic by a dead proxy's past — and
// the set of silent sources is recomputed for MissingProxies.
func (c *Cluster) Collect(window time.Duration) []telemetry.WindowStats {
	now := c.now()
	c.mu.Lock()
	proxies := append([]*dataplane.Proxy(nil), c.proxies...)
	buffered := c.ingested
	c.ingested = nil
	staleAfter := c.staleAfter
	var groups [][]telemetry.WindowStats
	for _, g := range buffered {
		if staleAfter > 0 && now.Sub(g.at) > staleAfter {
			c.excluded++
			c.mExcluded.Inc()
			continue
		}
		groups = append(groups, g.stats)
	}
	var missing []string
	if staleAfter > 0 {
		for src, seen := range c.sources {
			if now.Sub(seen) > staleAfter {
				missing = append(missing, src)
			}
		}
		sort.Strings(missing)
	}
	c.missing = missing
	c.mu.Unlock()
	c.mMissing.Set(float64(len(missing)))

	for _, p := range proxies {
		groups = append(groups, p.FlushTelemetry(window))
	}
	merged := telemetry.Merge(groups...)
	for i := range merged {
		merged[i].Key.Cluster = string(c.id)
	}
	c.mu.Lock()
	c.last = merged
	c.mu.Unlock()
	return merged
}

// Report collects one window and uploads it to every registered global
// replica. After the first (full) upload, reports are incremental: only
// the (service, class) aggregates that changed beyond a small relative
// epsilon cross the wire, with an epoch marker so the global can detect
// gaps. Any failure — transport, or a 409 epoch-gap rejection — flags
// that upstream's next report as a full resync, so the protocol
// self-heals without coordination; one unreachable replica does not
// stop the others from staying warm. The context bounds the uploads so
// a daemon shutdown cancels in-flight reports instead of waiting out
// the HTTP timeout. Returns the first error encountered.
func (c *Cluster) Report(ctx context.Context, window time.Duration) error {
	stats := c.Collect(window)
	c.mu.Lock()
	ups := append([]*upstream(nil), c.ups...)
	c.mu.Unlock()
	var firstErr error
	for _, up := range ups {
		if err := c.reportTo(ctx, up, stats, window); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// reportTo uploads one collected window to one upstream replica,
// maintaining that upstream's private delta state.
func (c *Cluster) reportTo(ctx context.Context, up *upstream, stats []telemetry.WindowStats, window time.Duration) error {
	c.mu.Lock()
	up.epoch++
	rep := MetricsReport{
		Cluster:  c.id,
		WindowMS: window.Milliseconds(),
		Epoch:    up.epoch,
	}
	if up.needFull || up.epoch == 1 {
		rep.Stats = stats
	} else {
		rep.Delta = true
		rep.Stats, rep.Removed = telemetry.DeltaReport(up.lastReport, stats, reportEpsilon)
	}
	c.mu.Unlock()

	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	if err := postJSON(ctx, c.client, up.url+"/v1/metrics", body); err != nil {
		c.mu.Lock()
		up.needFull = true
		c.mu.Unlock()
		c.mReportErrs.Inc()
		return fmt.Errorf("controlplane: report to global: %w", err)
	}
	c.mu.Lock()
	up.needFull = false
	up.lastReport = stats
	c.mu.Unlock()
	c.mReports.Inc()
	return nil
}

// reportEpsilon is the relative change below which a telemetry
// aggregate is considered unchanged and omitted from a delta report.
const reportEpsilon = 1e-9

// Register announces this cluster controller (reachable at selfURL) to
// every registered global replica. Returns the first error; replicas
// that were reached stay registered.
func (c *Cluster) Register(ctx context.Context, selfURL string) error {
	c.mu.Lock()
	ups := append([]*upstream(nil), c.ups...)
	c.mu.Unlock()
	if len(ups) == 0 {
		return fmt.Errorf("controlplane: no global URL configured")
	}
	body, err := json.Marshal(RegisterRequest{Cluster: c.id, URL: selfURL})
	if err != nil {
		return err
	}
	var firstErr error
	for _, up := range ups {
		if err := postJSON(ctx, c.client, up.url+"/v1/register", body); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("controlplane: register: %w", err)
		}
	}
	return firstErr
}

// Run reports telemetry every period until the context is cancelled.
func (c *Cluster) Run(ctx context.Context, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Report(ctx, period) // errors visible to global via missing data
		case <-ctx.Done():
			return
		}
	}
}

// postJSON posts body to url under ctx and drains the response,
// returning an error on transport failure or a non-2xx status.
func postJSON(ctx context.Context, client *http.Client, url string, body []byte) error {
	return postJSONHeaders(ctx, client, url, body, nil)
}

// postJSONHeaders is postJSON with extra request headers (the leader
// epoch on fenced rule pushes). A non-2xx response is preserved as a
// statusError carrying the X-Slate-Reject marker, if any.
func postJSONHeaders(ctx context.Context, client *http.Client, url string, body []byte, hdr map[string]string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError{code: resp.StatusCode, reject: resp.Header.Get(dataplane.HeaderReject)}
	}
	return nil
}

// statusError is a non-2xx HTTP response, preserved as a typed error so
// callers can branch on the code (409 → resync) and the X-Slate-Reject
// marker (step down, don't resync) without string matching.
type statusError struct {
	code   int
	reject string
}

func (e statusError) Error() string {
	if e.reject != "" {
		return fmt.Sprintf("status %d (%s)", e.code, e.reject)
	}
	return fmt.Sprintf("status %d", e.code)
}

// statusCode extracts the HTTP status from an error chain produced by
// postJSON, reporting whether one was found.
func statusCode(err error) (int, bool) {
	var se statusError
	if errors.As(err, &se) {
		return se.code, true
	}
	return 0, false
}

// rejectReason extracts the X-Slate-Reject marker from an error chain
// ("" when absent): a non-empty marker tells a pusher it was fenced
// out as a deposed leader rather than merely out of sync.
func rejectReason(err error) string {
	var se statusError
	if errors.As(err, &se) {
		return se.reject
	}
	return ""
}
