package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// Cluster is the Cluster Controller daemon for one cluster: it
// aggregates telemetry from the cluster's SLATE-proxies, tags it with
// the cluster ID (instances don't know which cluster they belong to —
// paper §3.2), relays it to the Global Controller, and fans rule pushes
// out to every proxy.
type Cluster struct {
	id        topology.ClusterID
	globalURL string

	mu       sync.Mutex
	proxies  []*dataplane.Proxy
	ingested [][]telemetry.WindowStats
	last     []telemetry.WindowStats
	table    *routing.Table

	client *http.Client
}

// NewCluster returns a cluster controller reporting to globalURL (may
// be empty for in-process wiring where the caller pumps telemetry
// itself).
func NewCluster(id topology.ClusterID, globalURL string) *Cluster {
	return &Cluster{
		id:        id,
		globalURL: globalURL,
		table:     routing.EmptyTable(),
		client:    &http.Client{Timeout: 10 * time.Second},
	}
}

// ID returns the controller's cluster.
func (c *Cluster) ID() topology.ClusterID { return c.id }

// AddProxy registers a local sidecar for telemetry collection and rule
// distribution.
func (c *Cluster) AddProxy(p *dataplane.Proxy) {
	c.mu.Lock()
	c.proxies = append(c.proxies, p)
	p.SetTable(c.table)
	c.mu.Unlock()
}

// Handler returns the daemon's HTTP API.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rules", c.handleRules)
	mux.HandleFunc("GET /v1/rules", c.handleGetRules)
	mux.HandleFunc("POST /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	return mux
}

// handleGetRules serves the current table to out-of-process proxies
// that poll for rules (in-process proxies get pushes via AddProxy).
func (c *Cluster) handleGetRules(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Table())
}

// handleMetrics accepts telemetry pushed by out-of-process proxies (the
// standalone slate-cluster daemon path; in-process proxies are pulled
// via AddProxy instead).
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var stats []telemetry.WindowStats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.Ingest(stats)
	w.WriteHeader(http.StatusAccepted)
}

// Ingest buffers externally pushed telemetry for the next Report.
func (c *Cluster) Ingest(stats []telemetry.WindowStats) {
	c.mu.Lock()
	c.ingested = append(c.ingested, stats)
	c.mu.Unlock()
}

func (c *Cluster) handleRules(w http.ResponseWriter, r *http.Request) {
	var table routing.Table
	if err := json.NewDecoder(r.Body).Decode(&table); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.ApplyTable(&table)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Cluster) handleStats(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	stats := c.last
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// ApplyTable distributes a routing table to every registered proxy.
func (c *Cluster) ApplyTable(t *routing.Table) {
	c.mu.Lock()
	c.table = t
	proxies := append([]*dataplane.Proxy(nil), c.proxies...)
	c.mu.Unlock()
	for _, p := range proxies {
		p.SetTable(t)
	}
}

// LastStats returns the most recently collected window (for
// introspection; also served at GET /v1/stats).
func (c *Cluster) LastStats() []telemetry.WindowStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Table returns the last applied routing table.
func (c *Cluster) Table() *routing.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table
}

// Collect flushes every proxy's telemetry for the window, merges it,
// and stamps the cluster ID onto every key (the proxies already tag
// their own cluster, but the controller is authoritative — a proxy
// cannot know its cluster in a real deployment).
func (c *Cluster) Collect(window time.Duration) []telemetry.WindowStats {
	c.mu.Lock()
	proxies := append([]*dataplane.Proxy(nil), c.proxies...)
	groups := c.ingested
	c.ingested = nil
	c.mu.Unlock()
	for _, p := range proxies {
		groups = append(groups, p.FlushTelemetry(window))
	}
	merged := telemetry.Merge(groups...)
	for i := range merged {
		merged[i].Key.Cluster = string(c.id)
	}
	c.mu.Lock()
	c.last = merged
	c.mu.Unlock()
	return merged
}

// Report collects one window and uploads it to the global controller.
// The context bounds the upload so a daemon shutdown cancels an
// in-flight report instead of waiting out the HTTP timeout.
func (c *Cluster) Report(ctx context.Context, window time.Duration) error {
	stats := c.Collect(window)
	if c.globalURL == "" {
		return nil
	}
	body, err := json.Marshal(MetricsReport{
		Cluster:  c.id,
		WindowMS: window.Milliseconds(),
		Stats:    stats,
	})
	if err != nil {
		return err
	}
	if err := postJSON(ctx, c.client, c.globalURL+"/v1/metrics", body); err != nil {
		return fmt.Errorf("controlplane: report to global: %w", err)
	}
	return nil
}

// Register announces this cluster controller (reachable at selfURL) to
// the global controller.
func (c *Cluster) Register(ctx context.Context, selfURL string) error {
	if c.globalURL == "" {
		return fmt.Errorf("controlplane: no global URL configured")
	}
	body, err := json.Marshal(RegisterRequest{Cluster: c.id, URL: selfURL})
	if err != nil {
		return err
	}
	if err := postJSON(ctx, c.client, c.globalURL+"/v1/register", body); err != nil {
		return fmt.Errorf("controlplane: register: %w", err)
	}
	return nil
}

// Run reports telemetry every period until the context is cancelled.
func (c *Cluster) Run(ctx context.Context, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Report(ctx, period) // errors visible to global via missing data
		case <-ctx.Done():
			return
		}
	}
}

// postJSON posts body to url under ctx and drains the response,
// returning an error on transport failure or a non-2xx status.
func postJSON(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
