package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// ingestGroup is one externally pushed telemetry batch, stamped with
// the pushing proxy's identity and arrival time so stale batches can
// be excluded from the upstream snapshot.
type ingestGroup struct {
	source string // "service@cluster" from X-Slate-Source, or ""
	at     time.Time
	stats  []telemetry.WindowStats
}

// Cluster is the Cluster Controller daemon for one cluster: it
// aggregates telemetry from the cluster's SLATE-proxies, tags it with
// the cluster ID (instances don't know which cluster they belong to —
// paper §3.2), relays it to the Global Controller, and fans rule pushes
// out to every proxy.
//
// Graceful degradation: pushing proxies identify themselves via the
// X-Slate-Source header; the controller remembers when each source was
// last heard from. With a staleness bound set (SetStaleAfter), Collect
// excludes buffered batches older than the bound from the global
// snapshot — a re-delivered backlog from a long-dead agent must not
// masquerade as current load — and marks sources that have gone silent
// (MissingProxies, also served at GET /v1/health).
type Cluster struct {
	id        topology.ClusterID
	globalURL string

	mu         sync.Mutex
	proxies    []*dataplane.Proxy
	ingested   []ingestGroup
	sources    map[string]time.Time
	missing    []string
	excluded   int
	staleAfter time.Duration
	last       []telemetry.WindowStats
	table      *routing.Table

	client *http.Client
	now    func() time.Time

	metricsH    http.Handler
	mIngested   *obs.Counter
	mIngestErrs *obs.Counter
	mReports    *obs.Counter
	mReportErrs *obs.Counter
	mExcluded   *obs.Counter
	mMissing    *obs.Gauge
	mTableVer   *obs.Gauge
}

// NewCluster returns a cluster controller reporting to globalURL (may
// be empty for in-process wiring where the caller pumps telemetry
// itself). Metrics register into obs.Default(), labeled by cluster.
func NewCluster(id topology.ClusterID, globalURL string) *Cluster {
	reg := obs.Default()
	cl := string(id)
	return &Cluster{
		id:        id,
		globalURL: globalURL,
		sources:   make(map[string]time.Time),
		table:     routing.EmptyTable(),
		client:    &http.Client{Timeout: 10 * time.Second},
		now:       time.Now,
		metricsH:  reg.Handler(),
		mIngested: reg.CounterVec("slate_cluster_ingested_batches_total",
			"Telemetry batches accepted from local proxies.", "cluster").With(cl),
		mIngestErrs: reg.CounterVec("slate_cluster_ingest_errors_total",
			"Telemetry pushes rejected as malformed.", "cluster").With(cl),
		mReports: reg.CounterVec("slate_cluster_reports_total",
			"Window reports uploaded to the global controller.", "cluster").With(cl),
		mReportErrs: reg.CounterVec("slate_cluster_report_errors_total",
			"Window reports that failed to reach the global controller.", "cluster").With(cl),
		mExcluded: reg.CounterVec("slate_cluster_excluded_stale_windows_total",
			"Pushed batches excluded from the global snapshot as stale.", "cluster").With(cl),
		mMissing: reg.GaugeVec("slate_cluster_missing_proxies",
			"Proxies silent past the staleness bound as of the last Collect.", "cluster").With(cl),
		mTableVer: reg.GaugeVec("slate_cluster_table_version",
			"Version of the routing table last applied.", "cluster").With(cl),
	}
}

// SetTransport swaps the HTTP transport used for upstream RPCs (fault
// injection, tests). Call before Run.
func (c *Cluster) SetTransport(rt http.RoundTripper) {
	c.client.Transport = rt
}

// SetStaleAfter bounds telemetry staleness: Collect excludes pushed
// batches older than d and marks sources silent for longer than d as
// missing. Zero (the default) disables both.
func (c *Cluster) SetStaleAfter(d time.Duration) {
	c.mu.Lock()
	c.staleAfter = d
	c.mu.Unlock()
}

// ID returns the controller's cluster.
func (c *Cluster) ID() topology.ClusterID { return c.id }

// AddProxy registers a local sidecar for telemetry collection and rule
// distribution.
func (c *Cluster) AddProxy(p *dataplane.Proxy) {
	c.mu.Lock()
	c.proxies = append(c.proxies, p)
	p.SetTable(c.table)
	c.mu.Unlock()
}

// Handler returns the daemon's HTTP API.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rules", c.handleRules)
	mux.HandleFunc("GET /v1/rules", c.handleGetRules)
	mux.HandleFunc("POST /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /v1/health", c.handleHealth)
	mux.Handle("GET "+obs.MetricsPath, c.metricsH)
	return mux
}

// handleGetRules serves the current table to out-of-process proxies
// that poll for rules (in-process proxies get pushes via AddProxy).
func (c *Cluster) handleGetRules(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Table())
}

// handleMetrics accepts telemetry pushed by out-of-process proxies (the
// standalone slate-cluster daemon path; in-process proxies are pulled
// via AddProxy instead).
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var stats []telemetry.WindowStats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		c.mIngestErrs.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.IngestFrom(r.Header.Get(dataplane.HeaderSource), stats)
	w.WriteHeader(http.StatusAccepted)
}

// Ingest buffers externally pushed telemetry for the next Report,
// without a source identity.
func (c *Cluster) Ingest(stats []telemetry.WindowStats) {
	c.IngestFrom("", stats)
}

// IngestFrom buffers externally pushed telemetry for the next Report
// and records when the pushing proxy was last heard from.
func (c *Cluster) IngestFrom(source string, stats []telemetry.WindowStats) {
	now := c.now()
	c.mu.Lock()
	c.ingested = append(c.ingested, ingestGroup{source: source, at: now, stats: stats})
	if source != "" {
		c.sources[source] = now
	}
	c.mu.Unlock()
	c.mIngested.Inc()
}

// MissingProxies returns the sources that had not reported within the
// staleness bound as of the last Collect, sorted.
func (c *Cluster) MissingProxies() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.missing...)
}

// ExcludedStaleWindows returns how many pushed batches Collect has
// excluded as stale since the controller started.
func (c *Cluster) ExcludedStaleWindows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.excluded
}

// Health is the cluster controller's degradation snapshot, served at
// GET /v1/health.
type Health struct {
	Cluster        topology.ClusterID `json:"cluster"`
	TableVersion   uint64             `json:"table_version"`
	MissingProxies []string           `json:"missing_proxies,omitempty"`
	ExcludedStale  int                `json:"excluded_stale_windows"`
}

func (c *Cluster) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	h := Health{
		Cluster:        c.id,
		TableVersion:   c.table.Version,
		MissingProxies: append([]string(nil), c.missing...),
		ExcludedStale:  c.excluded,
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (c *Cluster) handleRules(w http.ResponseWriter, r *http.Request) {
	var table routing.Table
	if err := json.NewDecoder(r.Body).Decode(&table); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.ApplyTable(&table)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Cluster) handleStats(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	stats := c.last
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// ApplyTable distributes a routing table to every registered proxy.
func (c *Cluster) ApplyTable(t *routing.Table) {
	c.mu.Lock()
	c.table = t
	proxies := append([]*dataplane.Proxy(nil), c.proxies...)
	c.mu.Unlock()
	c.mTableVer.Set(float64(t.Version))
	for _, p := range proxies {
		p.SetTable(t)
	}
}

// LastStats returns the most recently collected window (for
// introspection; also served at GET /v1/stats).
func (c *Cluster) LastStats() []telemetry.WindowStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Table returns the last applied routing table.
func (c *Cluster) Table() *routing.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table
}

// Collect flushes every proxy's telemetry for the window, merges it,
// and stamps the cluster ID onto every key (the proxies already tag
// their own cluster, but the controller is authoritative — a proxy
// cannot know its cluster in a real deployment).
//
// With a staleness bound set, pushed batches that sat in the buffer
// longer than the bound are excluded from the merge — stale load data
// in the global snapshot is worse than missing data, because the
// optimizer would steer current traffic by a dead proxy's past — and
// the set of silent sources is recomputed for MissingProxies.
func (c *Cluster) Collect(window time.Duration) []telemetry.WindowStats {
	now := c.now()
	c.mu.Lock()
	proxies := append([]*dataplane.Proxy(nil), c.proxies...)
	buffered := c.ingested
	c.ingested = nil
	staleAfter := c.staleAfter
	var groups [][]telemetry.WindowStats
	for _, g := range buffered {
		if staleAfter > 0 && now.Sub(g.at) > staleAfter {
			c.excluded++
			c.mExcluded.Inc()
			continue
		}
		groups = append(groups, g.stats)
	}
	var missing []string
	if staleAfter > 0 {
		for src, seen := range c.sources {
			if now.Sub(seen) > staleAfter {
				missing = append(missing, src)
			}
		}
		sort.Strings(missing)
	}
	c.missing = missing
	c.mu.Unlock()
	c.mMissing.Set(float64(len(missing)))

	for _, p := range proxies {
		groups = append(groups, p.FlushTelemetry(window))
	}
	merged := telemetry.Merge(groups...)
	for i := range merged {
		merged[i].Key.Cluster = string(c.id)
	}
	c.mu.Lock()
	c.last = merged
	c.mu.Unlock()
	return merged
}

// Report collects one window and uploads it to the global controller.
// The context bounds the upload so a daemon shutdown cancels an
// in-flight report instead of waiting out the HTTP timeout.
func (c *Cluster) Report(ctx context.Context, window time.Duration) error {
	stats := c.Collect(window)
	if c.globalURL == "" {
		return nil
	}
	body, err := json.Marshal(MetricsReport{
		Cluster:  c.id,
		WindowMS: window.Milliseconds(),
		Stats:    stats,
	})
	if err != nil {
		return err
	}
	if err := postJSON(ctx, c.client, c.globalURL+"/v1/metrics", body); err != nil {
		c.mReportErrs.Inc()
		return fmt.Errorf("controlplane: report to global: %w", err)
	}
	c.mReports.Inc()
	return nil
}

// Register announces this cluster controller (reachable at selfURL) to
// the global controller.
func (c *Cluster) Register(ctx context.Context, selfURL string) error {
	if c.globalURL == "" {
		return fmt.Errorf("controlplane: no global URL configured")
	}
	body, err := json.Marshal(RegisterRequest{Cluster: c.id, URL: selfURL})
	if err != nil {
		return err
	}
	if err := postJSON(ctx, c.client, c.globalURL+"/v1/register", body); err != nil {
		return fmt.Errorf("controlplane: register: %w", err)
	}
	return nil
}

// Run reports telemetry every period until the context is cancelled.
func (c *Cluster) Run(ctx context.Context, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Report(ctx, period) // errors visible to global via missing data
		case <-ctx.Done():
			return
		}
	}
}

// postJSON posts body to url under ctx and drains the response,
// returning an error on transport failure or a non-2xx status.
func postJSON(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
