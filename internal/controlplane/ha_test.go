package controlplane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/fault"
	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// vclock is a shared virtual clock: lease expiry is the only
// time-dependent part of the protocol, so advancing it deterministically
// scripts elections without sleeping.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVclock() *vclock {
	return &vclock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (v *vclock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

func (v *vclock) Advance(d time.Duration) {
	v.mu.Lock()
	v.t = v.t.Add(d)
	v.mu.Unlock()
}

// starApp2 is a two-class star application whose classes own disjoint
// call subtrees behind a shared gateway, so a decomposed controller
// splits it into two independent shards — one per class.
func starApp2() *appgraph.App {
	clusters := []topology.ClusterID{topology.West, topology.East}
	app := &appgraph.App{Name: "star2", Services: map[appgraph.ServiceID]*appgraph.Service{}}
	const gateway appgraph.ServiceID = "gateway"
	front := appgraph.ReplicaPool{Replicas: 2, Concurrency: 64}
	pool := appgraph.ReplicaPool{Replicas: 2, Concurrency: 4}
	app.Services[gateway] = &appgraph.Service{ID: gateway, Placement: appgraph.Uniform(front, clusters...)}
	work := appgraph.Work{MeanServiceTime: 10 * time.Millisecond, RequestBytes: 1 << 10, ResponseBytes: 4 << 10}
	for _, name := range []string{"ca", "cb"} {
		svc := appgraph.ServiceID("svc-" + name)
		app.Services[svc] = &appgraph.Service{ID: svc, Placement: appgraph.Uniform(pool, clusters...)}
		app.Classes = append(app.Classes, &appgraph.Class{Name: name, Root: &appgraph.CallNode{
			Service: gateway, Method: "POST", Path: "/" + name,
			Work:  appgraph.Work{MeanServiceTime: 100 * time.Microsecond},
			Count: 1,
			Children: []*appgraph.CallNode{{
				Service: svc, Method: "POST", Path: "/work", Work: work, Count: 1,
			}},
		}})
	}
	return app
}

// haReplica is one replicated global controller under test.
type haReplica struct {
	g    *Global
	ctrl *core.Controller
	srv  *httptest.Server
}

// haRig is a replicated control plane on virtual time: n global
// replicas, two cluster controllers reporting to all of them.
type haRig struct {
	t        *testing.T
	clk      *vclock
	reps     []*haReplica
	clusters []*Cluster
	ccURLs   []string
}

func newHARig(t *testing.T, n int, cfg HAConfig) *haRig {
	t.Helper()
	rig := &haRig{t: t, clk: newVclock()}
	top := topology.TwoClusters(40 * time.Millisecond)
	for i := 0; i < n; i++ {
		ctrl, err := core.NewController(top, chainApp(), core.ControllerConfig{
			DemandSmoothing: 1, Decompose: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := NewGlobal(ctrl)
		srv := httptest.NewServer(g.Handler())
		t.Cleanup(srv.Close)
		g.EnableHA(srv.URL, cfg)
		g.SetNow(rig.clk.Now)
		rig.reps = append(rig.reps, &haReplica{g: g, ctrl: ctrl, srv: srv})
	}
	for _, id := range []topology.ClusterID{topology.West, topology.East} {
		cc := NewCluster(id, "")
		cc.SetNow(rig.clk.Now)
		for _, r := range rig.reps {
			cc.AddUpstream(r.srv.URL)
		}
		srv := httptest.NewServer(cc.Handler())
		t.Cleanup(srv.Close)
		if err := cc.Register(t.Context(), srv.URL); err != nil {
			t.Fatal(err)
		}
		rig.clusters = append(rig.clusters, cc)
		rig.ccURLs = append(rig.ccURLs, srv.URL)
	}
	return rig
}

// report ingests one telemetry window (west/east gateway RPS for the
// chain app's single class) and uploads it to every replica.
func (r *haRig) report(westRPS, eastRPS float64) {
	r.t.Helper()
	for i, rps := range []float64{westRPS, eastRPS} {
		cc := r.clusters[i]
		cc.Ingest([]telemetry.WindowStats{{
			Key:      telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(cc.ID())},
			RPS:      rps,
			Requests: uint64(rps),
			Window:   time.Second,
		}})
		if err := cc.Report(r.t.Context(), time.Second); err != nil {
			r.t.Fatalf("report %s: %v", cc.ID(), err)
		}
	}
}

// step runs one HAStep on every live replica, in replica-ID order.
func (r *haRig) step(dead map[int]bool) {
	r.t.Helper()
	for i, rep := range r.reps {
		if dead[i] {
			continue
		}
		rep.g.HAStep(r.t.Context()) // push errors surface via lastErr
	}
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestLeaderElectionAndFailover walks the replicated control plane
// through its whole life cycle on virtual time: first election, steady
// leadership with followers caching warm snapshots, leader death and
// takeover by a follower that resumes WARM from the cached snapshot,
// and the deposed leader's zombie publish bouncing off the fence.
func TestLeaderElectionAndFailover(t *testing.T) {
	const ttl = 10 * time.Second
	rig := newHARig(t, 3, HAConfig{LeaseTTL: ttl, EventThreshold: -1})
	r0, r1, r2 := rig.reps[0], rig.reps[1], rig.reps[2]

	// Round 1: the first replica to campaign wins epoch 1; rivals learn
	// the holder from their denials and cache its snapshot.
	rig.report(900, 100)
	rig.step(nil)
	if !r0.g.IsLeader() || r1.g.IsLeader() || r2.g.IsLeader() {
		t.Fatalf("want r0 sole leader; got %v %v %v",
			r0.g.IsLeader(), r1.g.IsLeader(), r2.g.IsLeader())
	}
	if got := r1.g.LeaderURL(); got != r0.srv.URL {
		t.Fatalf("r1 leader URL = %q, want %q", got, r0.srv.URL)
	}
	for _, u := range rig.ccURLs {
		h := getJSON[Health](t, u+"/v1/health")
		if h.LeaderURL != r0.srv.URL || h.LeaderEpoch != 1 || h.PubEpoch != 1 {
			t.Fatalf("cluster health %+v, want r0 at epoch 1", h)
		}
	}
	gh := getJSON[GlobalHealth](t, r0.srv.URL+"/v1/health")
	if gh.Role != "leader" || gh.LeaseEpoch != 1 {
		t.Fatalf("r0 health %+v, want leader at epoch 1", gh)
	}
	if gh := getJSON[GlobalHealth](t, r1.srv.URL+"/v1/health"); gh.Role != "follower" {
		t.Fatalf("r1 health %+v, want follower", gh)
	}

	// Rounds 2-3: steady state. The leader renews inside the TTL and
	// keeps publishing; followers keep their snapshot cache fresh.
	for i := 0; i < 2; i++ {
		rig.clk.Advance(time.Second)
		rig.report(900, 100)
		rig.step(nil)
	}
	if !r0.g.IsLeader() {
		t.Fatal("r0 lost leadership while renewing inside the TTL")
	}
	vBefore := rig.clusters[0].Table().Version
	if vBefore == 0 {
		t.Fatal("leader never published a table")
	}
	if r1.g.mSnapFetches.Value() == 0 {
		t.Fatal("follower r1 never cached a leader snapshot")
	}

	// Kill r0 and let its lease lapse. The next replica in ID order
	// campaigns with a higher epoch, wins the majority, and must resume
	// from the cached snapshot: its very first tick may not pay a single
	// cold solve — that is the entire point of warm handoff.
	patchesBefore := []uint64{rig.clusters[0].mPatches.Value(), rig.clusters[1].mPatches.Value()}
	rig.clk.Advance(ttl + time.Second)
	rig.report(900, 100)
	rig.step(map[int]bool{0: true})
	if !r1.g.IsLeader() {
		t.Fatal("r1 did not take over after the lease lapsed")
	}
	if r2.g.IsLeader() {
		t.Fatal("r2 must stay follower (r1 already renewed epoch 2)")
	}
	if got := r1.g.LeaseEpoch(); got != 2 {
		t.Fatalf("r1 lease epoch = %d, want 2", got)
	}
	if r1.g.mSnapRestores.Value() == 0 {
		t.Fatal("r1 won without restoring the cached snapshot")
	}
	if st := r1.ctrl.OptimizerStats(); st.ColdSolves != 0 {
		t.Fatalf("new leader paid %d cold solves; snapshot restore should resume warm (stats %+v)",
			st.ColdSolves, st)
	}
	// Time-to-fresh-table: within its FIRST step the new leader's publish
	// already landed on every cluster (an acknowledged patch confirms the
	// table even when the plan itself is unchanged).
	for i, cc := range rig.clusters {
		if cc.mPatches.Value() <= patchesBefore[i] {
			t.Fatalf("cluster %s got no push from the new leader", cc.ID())
		}
	}
	if v := rig.clusters[0].Table().Version; v < vBefore {
		t.Fatalf("failover regressed the table: version %d -> %d", vBefore, v)
	}
	for _, u := range rig.ccURLs {
		h := getJSON[Health](t, u+"/v1/health")
		if h.LeaderURL != r1.srv.URL || h.PubEpoch != 2 {
			t.Fatalf("cluster health %+v, want r1 fenced at epoch 2", h)
		}
	}

	// r2 learns the new leader on its next step, and a small demand drift
	// under the new leader re-optimizes without ever going cold — the
	// inherited bases keep warm-starting.
	rig.clk.Advance(time.Second)
	rig.report(918, 102)
	rig.step(map[int]bool{0: true})
	if got := r2.g.LeaderURL(); got != r1.srv.URL {
		t.Fatalf("r2 leader URL = %q, want %q", got, r1.srv.URL)
	}
	if st := r1.ctrl.OptimizerStats(); st.ColdSolves != 0 || st.SubSolves == 0 {
		t.Fatalf("post-failover drift solve: stats %+v, want warm sub-solves and zero cold", st)
	}
	vAfter := rig.clusters[0].Table().Version

	// The deposed leader comes back believing it still leads and ticks.
	// Its push carries epoch 1 against a pubEpoch-2 fence: every cluster
	// rejects with the stale-leader marker, the push fails, and r0 steps
	// down instead of "resyncing" its stale table over the newer one.
	stepDownsBefore := r0.g.mStepDowns.Value()
	err := r0.g.Tick(t.Context())
	if err == nil {
		t.Fatal("deposed leader's publish succeeded; fence is broken")
	}
	if !strings.Contains(err.Error(), "stale-leader") {
		t.Fatalf("deposed push error = %v, want stale-leader rejection", err)
	}
	if r0.g.IsLeader() {
		t.Fatal("r0 still thinks it leads after a fencing rejection")
	}
	if r0.g.mStepDowns.Value() != stepDownsBefore+1 {
		t.Fatal("step-down metric did not increment")
	}
	if got := rig.clusters[0].Table().Version; got != vAfter {
		t.Fatalf("cluster table moved from %d to %d on a deposed push", vAfter, got)
	}
	if rig.clusters[0].mStaleRejects.Value() == 0 {
		t.Fatal("cluster never counted the stale rejection")
	}

	// The deposed replica rejoins as a follower and, with the lease held
	// by r1, cannot win it back until r1 actually stops renewing.
	rig.clk.Advance(time.Second)
	rig.step(nil)
	if r0.g.IsLeader() || !r1.g.IsLeader() {
		t.Fatal("rejoined r0 displaced a live leader")
	}
	if got := r0.g.LeaderURL(); got != r1.srv.URL {
		t.Fatalf("rejoined r0 leader URL = %q, want %q", got, r1.srv.URL)
	}
}

// TestTickErrorMetricAcrossFaultSchedule is the regression test for the
// Tick accounting fix: a tick whose PUSH fails is still a failed tick,
// so slate_global_tick_errors_total must rise on every early-return
// path, not only on optimizer errors. It drives a tick per window
// against a cluster controller taken down by a fault schedule and
// checks the error counter matches the schedule exactly.
func TestTickErrorMetricAcrossFaultSchedule(t *testing.T) {
	g, gsrv := newGlobalServer(t)
	cc := NewCluster(topology.West, gsrv.URL)
	ccsrv := httptest.NewServer(cc.Handler())
	t.Cleanup(ccsrv.Close)
	if err := cc.Register(t.Context(), ccsrv.URL); err != nil {
		t.Fatal(err)
	}

	// Outage windows 2..4 of a 7-window run, driven through the fault
	// injector so the failure is a real transport error on the push path.
	target := fault.ClusterTarget(topology.West)
	sched := fault.NewSchedule().Outage(target, 2*time.Second, 3*time.Second)
	inj := fault.NewInjector(sim.NewRNG(1))
	hosts := fault.NewHostMap()
	hosts.Register(strings.TrimPrefix(ccsrv.URL, "http://"), target)
	g.SetTransport(fault.NewTransport(http.DefaultTransport, inj, fault.Global, hosts))

	ticksBefore := g.mTicks.Value()
	errsBefore := g.mTickErrs.Value()
	pushErrsBefore := g.mPushErrs.Value()
	var wantErrs uint64
	for w := 0; w < 7; w++ {
		now := time.Duration(w) * time.Second
		inj.Sync(sched, now)
		err := g.Tick(t.Context())
		if down := sched.DownAt(target, now); down != (err != nil) {
			t.Fatalf("window %d: down=%v but tick error=%v", w, down, err)
		}
		if err != nil {
			wantErrs++
		}
		if got := g.mTickErrs.Value() - errsBefore; got != wantErrs {
			t.Fatalf("window %d: tick errors = %d, want %d", w, got, wantErrs)
		}
	}
	if wantErrs != 3 {
		t.Fatalf("schedule produced %d failed ticks, want 3", wantErrs)
	}
	if got := g.mTicks.Value() - ticksBefore; got != 7 {
		t.Fatalf("ticks = %d, want 7 (failed ticks still count)", got)
	}
	if got := g.mPushErrs.Value() - pushErrsBefore; got != 3 {
		t.Fatalf("push errors = %d, want 3", got)
	}
}

// TestEventDrivenResolve exercises the telemetry-triggered re-solve:
// a load swing beyond the threshold arms an immediate solve, the token
// bucket bounds the rate, and shard fingerprints confine the work to
// the shards whose demand actually moved.
func TestEventDrivenResolve(t *testing.T) {
	top := topology.TwoClusters(40 * time.Millisecond)
	ctrl, err := core.NewController(top, starApp2(), core.ControllerConfig{
		DemandSmoothing: 1, Decompose: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGlobal(ctrl)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	// No cluster controllers registered: the replica trivially holds
	// leadership (bootstrap shape), isolating the event machinery.
	g.EnableHA(srv.URL, HAConfig{EventThreshold: 0.25, EventBurst: 2})
	if err := g.HAStep(t.Context()); err != nil {
		t.Fatal(err)
	}
	if !g.IsLeader() {
		t.Fatal("single replica with no acceptors must lead")
	}

	report := func(caRPS, cbRPS float64) {
		t.Helper()
		stats := []telemetry.WindowStats{
			{Key: telemetry.MetricKey{Service: "gateway", Class: "ca", Cluster: string(topology.West)},
				RPS: caRPS, Requests: uint64(caRPS), Window: time.Second},
			{Key: telemetry.MetricKey{Service: "gateway", Class: "cb", Cluster: string(topology.West)},
				RPS: cbRPS, Requests: uint64(cbRPS), Window: time.Second},
		}
		resp := postJSONReq(t, srv.URL+"/v1/metrics", MetricsReport{
			Cluster: topology.West, WindowMS: 1000, Stats: stats,
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("metrics report: status %d", resp.StatusCode)
		}
	}

	// A silent cluster stirring (0 -> nonzero) always arms.
	report(400, 400)
	if g.mEventBreaches.Value() == 0 {
		t.Fatal("0->nonzero load did not arm an event solve")
	}
	if !g.TryEventSolve(t.Context()) {
		t.Fatal("armed event solve did not run")
	}
	if g.mEventSolves.Value() != 1 {
		t.Fatalf("event solves = %d, want 1", g.mEventSolves.Value())
	}

	// An identical window is below threshold: nothing arms.
	report(400, 400)
	if g.TryEventSolve(t.Context()) {
		t.Fatal("unchanged load ran an event solve")
	}

	// One class doubles (total +50% > 25% threshold): the solve runs and
	// touches ONLY the dirty shard — the other class's subproblem is
	// skipped on its clean fingerprint.
	before := ctrl.OptimizerStats()
	report(800, 400)
	if !g.TryEventSolve(t.Context()) {
		t.Fatal("50% swing did not trigger an event solve")
	}
	after := ctrl.OptimizerStats()
	if solved := after.SubSolves - before.SubSolves; solved != 1 {
		t.Fatalf("event solve ran %d subproblems, want 1 (dirty shard only)", solved)
	}
	if skipped := after.SkippedSolves - before.SkippedSolves; skipped != 1 {
		t.Fatalf("event solve skipped %d subproblems, want 1 (the clean shard)", skipped)
	}

	// Token bucket: EventBurst=2 tokens are spent; a third breach must
	// wait for the scheduled step to refill.
	report(1300, 400)
	if g.TryEventSolve(t.Context()) {
		t.Fatal("event solve ran with an empty token bucket")
	}
	if err := g.HAStep(t.Context()); err != nil {
		t.Fatal(err)
	}
	if !g.TryEventSolve(t.Context()) {
		t.Fatal("scheduled step did not refill an event token")
	}
}

// TestEventSolveDeterminism re-runs the breach/solve sequence on a
// fresh rig and checks the decision trail (breaches, solves, table
// version) is identical — event-driven behavior must be a pure function
// of the telemetry sequence, never of timing.
func TestEventSolveDeterminism(t *testing.T) {
	run := func() (breaches, solves uint64, version uint64) {
		top := topology.TwoClusters(40 * time.Millisecond)
		ctrl, err := core.NewController(top, starApp2(), core.ControllerConfig{
			DemandSmoothing: 1, Decompose: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := NewGlobal(ctrl)
		srv := httptest.NewServer(g.Handler())
		defer srv.Close()
		g.EnableHA(srv.URL, HAConfig{EventThreshold: 0.25, EventBurst: 2})
		b0, s0 := g.mEventBreaches.Value(), g.mEventSolves.Value()
		g.HAStep(t.Context())
		for _, rps := range []float64{300, 300, 500, 900, 900, 1400} {
			resp := postJSONReq(t, srv.URL+"/v1/metrics", MetricsReport{
				Cluster: topology.West, WindowMS: 1000,
				Stats: []telemetry.WindowStats{{
					Key: telemetry.MetricKey{Service: "gateway", Class: "ca", Cluster: string(topology.West)},
					RPS: rps, Requests: uint64(rps), Window: time.Second,
				}},
			})
			resp.Body.Close()
			g.TryEventSolve(t.Context())
		}
		return g.mEventBreaches.Value() - b0, g.mEventSolves.Value() - s0, ctrl.Table().Version
	}
	b1, s1, v1 := run()
	b2, s2, v2 := run()
	if b1 != b2 || s1 != s2 || v1 != v2 {
		t.Fatalf("event trail diverged: (%d,%d,%d) vs (%d,%d,%d)", b1, s1, v1, b2, s2, v2)
	}
	if b1 == 0 || s1 == 0 {
		t.Fatalf("sequence armed %d breaches / %d solves, want >0 of each", b1, s1)
	}
}
