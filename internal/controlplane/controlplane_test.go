package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func chainApp() *appgraph.App {
	return appgraph.LinearChain(appgraph.ChainOptions{
		Services:        3,
		MeanServiceTime: 10 * time.Millisecond,
		Pool:            appgraph.ReplicaPool{Replicas: 2, Concurrency: 4},
		Clusters:        []topology.ClusterID{topology.West, topology.East},
	})
}

func newGlobalServer(t *testing.T) (*Global, *httptest.Server) {
	t.Helper()
	top := topology.TwoClusters(40 * time.Millisecond)
	ctrl, err := core.NewController(top, chainApp(), core.ControllerConfig{DemandSmoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGlobal(ctrl)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv
}

func postJSONReq(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func feStats(west, east float64) []telemetry.WindowStats {
	return []telemetry.WindowStats{
		{Key: telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.West)},
			RPS: west, Requests: uint64(west), MeanLatency: 30 * time.Millisecond},
		{Key: telemetry.MetricKey{Service: "gateway", Class: "default", Cluster: string(topology.East)},
			RPS: east, Requests: uint64(east), MeanLatency: 30 * time.Millisecond},
	}
}

func TestGlobalMetricsOptimizeTableRoundTrip(t *testing.T) {
	_, srv := newGlobalServer(t)

	resp := postJSONReq(t, srv.URL+"/v1/metrics", MetricsReport{
		Cluster: topology.West, WindowMS: 1000, Stats: feStats(900, 100),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	drain(resp)

	resp = postJSONReq(t, srv.URL+"/v1/optimize", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status = %d", resp.StatusCode)
	}
	var table routing.Table
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if table.Len() == 0 {
		t.Fatal("optimizer produced no rules under overload")
	}
	d := table.Lookup("svc-1", "default", topology.West)
	if d.Weight(topology.East) <= 0 {
		t.Errorf("no offload in pushed table: %v", d)
	}

	// GET /v1/table returns the same rules.
	resp2, err := http.Get(srv.URL + "/v1/table")
	if err != nil {
		t.Fatal(err)
	}
	var table2 routing.Table
	if err := json.NewDecoder(resp2.Body).Decode(&table2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if table2.Version != table.Version || table2.Len() != table.Len() {
		t.Errorf("table mismatch: v%d/%d vs v%d/%d", table2.Version, table2.Len(), table.Version, table.Len())
	}
}

func TestGlobalStatus(t *testing.T) {
	_, srv := newGlobalServer(t)
	resp := postJSONReq(t, srv.URL+"/v1/register", RegisterRequest{Cluster: topology.West, URL: "http://127.0.0.1:1"})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	drain(resp)

	r2, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if len(st.Clusters) != 1 || st.Clusters[0] != topology.West {
		t.Errorf("status clusters = %v", st.Clusters)
	}
}

func TestGlobalRegisterValidation(t *testing.T) {
	_, srv := newGlobalServer(t)
	resp := postJSONReq(t, srv.URL+"/v1/register", RegisterRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty register status = %d, want 400", resp.StatusCode)
	}
	drain(resp)
	resp2, err := http.Post(srv.URL+"/v1/metrics", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d, want 400", resp2.StatusCode)
	}
	drain(resp2)
}

func TestClusterControllerCollectTagsClusterID(t *testing.T) {
	cc := NewCluster(topology.West, "")
	reg := dataplane.ResolverFunc(func(s string, c topology.ClusterID) (string, error) {
		return "", fmt.Errorf("none")
	})
	app := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer app.Close()
	p, err := dataplane.New(dataplane.Config{
		Service: "svc", Cluster: "unknown-to-proxy", LocalApp: app.URL, Resolver: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc.AddProxy(p)
	srv := httptest.NewServer(p)
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/x"); err != nil {
		t.Fatal(err)
	}
	stats := cc.Collect(time.Second)
	if len(stats) != 1 {
		t.Fatalf("stats = %d", len(stats))
	}
	if stats[0].Key.Cluster != string(topology.West) {
		t.Errorf("cluster tag = %q, want west (controller is authoritative)", stats[0].Key.Cluster)
	}
}

func TestClusterControllerRulePushAppliesToProxies(t *testing.T) {
	cc := NewCluster(topology.West, "")
	reg := dataplane.ResolverFunc(func(s string, c topology.ClusterID) (string, error) {
		return "", fmt.Errorf("none")
	})
	p, err := dataplane.New(dataplane.Config{
		Service: "svc", Cluster: topology.West, LocalApp: "http://127.0.0.1:1", Resolver: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc.AddProxy(p)
	srv := httptest.NewServer(cc.Handler())
	defer srv.Close()

	table := routing.NewTable(7, map[routing.Key]routing.Distribution{
		{Service: "callee", Class: routing.AnyClass, Cluster: topology.West}: routing.Local(topology.East),
	})
	body, _ := json.Marshal(table)
	resp, err := http.Post(srv.URL+"/v1/rules", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("rules status = %d", resp.StatusCode)
	}
	if p.TableVersion() != 7 {
		t.Errorf("proxy table version = %d, want 7", p.TableVersion())
	}
	if cc.Table().Version != 7 {
		t.Errorf("cc table version = %d", cc.Table().Version)
	}
}

func TestEndToEndControlPlaneLoop(t *testing.T) {
	// Full loop over real HTTP: cluster controllers register with the
	// global, upload telemetry, global optimizes and pushes rules back,
	// and the proxies see the new table.
	_, gsrv := newGlobalServer(t)

	reg := dataplane.ResolverFunc(func(s string, c topology.ClusterID) (string, error) {
		return "", fmt.Errorf("none")
	})
	mk := func(cl topology.ClusterID) (*Cluster, *dataplane.Proxy) {
		cc := NewCluster(cl, gsrv.URL)
		p, err := dataplane.New(dataplane.Config{
			Service: "gateway", Cluster: cl, LocalApp: "http://127.0.0.1:1", Resolver: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		cc.AddProxy(p)
		srv := httptest.NewServer(cc.Handler())
		t.Cleanup(srv.Close)
		if err := cc.Register(t.Context(), srv.URL); err != nil {
			t.Fatal(err)
		}
		return cc, p
	}
	ccW, pW := mk(topology.West)
	ccE, _ := mk(topology.East)

	// Inject telemetry into the global via the cluster controllers'
	// report path (no local traffic: hand-roll the upload).
	up := func(cc *Cluster, stats []telemetry.WindowStats) {
		body, _ := json.Marshal(MetricsReport{Cluster: cc.ID(), WindowMS: 1000, Stats: stats})
		resp, err := http.Post(gsrv.URL+"/v1/metrics", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		drain(resp)
	}
	up(ccW, feStats(900, 0)[:1])
	up(ccE, feStats(0, 100)[1:])

	resp := postJSONReq(t, gsrv.URL+"/v1/optimize", struct{}{})
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status = %d", resp.StatusCode)
	}

	// The push must have reached the west proxy.
	if pW.TableVersion() == 0 {
		t.Fatal("proxy never received a rule push")
	}
	d := pW.Table().Lookup("svc-1", "default", topology.West)
	if d.Weight(topology.East) <= 0 {
		t.Errorf("west proxy has no offload rule: %v", d)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	table := routing.NewTable(3, map[routing.Key]routing.Distribution{
		{Service: "s", Class: "H", Cluster: topology.West}: mustDist(map[topology.ClusterID]float64{
			topology.West: 0.25, topology.East: 0.75,
		}),
	})
	body, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	var got routing.Table
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || got.Len() != 1 {
		t.Fatalf("round trip lost data: v%d len %d", got.Version, got.Len())
	}
	d := got.Lookup("s", "H", topology.West)
	if w := d.Weight(topology.East); !almostEqual(w, 0.75) {
		t.Errorf("east weight = %v, want 0.75", w)
	}
}

func mustDist(w map[topology.ClusterID]float64) routing.Distribution {
	d, err := routing.NewDistribution(w)
	if err != nil {
		panic(err)
	}
	return d
}

func TestGlobalRunLoopTicksAndStops(t *testing.T) {
	g, _ := newGlobalServer(t)
	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan struct{})
	go func() {
		g.Run(ctx, 5*time.Millisecond)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
	g.mu.Lock()
	ticks := g.ticks
	g.mu.Unlock()
	if ticks == 0 {
		t.Error("Run never ticked")
	}
}
