package controlplane

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// fuzzGlobal builds one Global handler for a whole fuzz run; individual
// executions reset the pending-report buffer so millions of iterations
// cannot grow it without bound.
func fuzzGlobal(f *testing.F) (*Global, http.Handler) {
	f.Helper()
	top := topology.TwoClusters(40 * time.Millisecond)
	ctrl, err := core.NewController(top, chainApp(), core.ControllerConfig{DemandSmoothing: 1})
	if err != nil {
		f.Fatal(err)
	}
	g := NewGlobal(ctrl)
	return g, g.Handler()
}

// FuzzHandleMetrics feeds arbitrary bodies to the global controller's
// telemetry ingest endpoint: it must never panic, and must answer only
// 202 (decoded), 400 (malformed), or 409 (delta with an epoch gap).
func FuzzHandleMetrics(f *testing.F) {
	g, h := fuzzGlobal(f)
	valid, err := json.Marshal(MetricsReport{
		Cluster:  topology.West,
		WindowMS: 1000,
		Stats:    feStats(900, 100),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"cluster":"west","window_ms":-5,"stats":null}`))
	f.Add([]byte(`{"stats":[{"key":{"service":"","class":"","cluster":""}}]}`))
	f.Add([]byte(`{"cluster":"west","delta":true,"epoch":7,"stats":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/metrics", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted && rec.Code != http.StatusBadRequest && rec.Code != http.StatusConflict {
			t.Fatalf("POST /v1/metrics(%q) = %d, want 202, 400, or 409", body, rec.Code)
		}
		for i := range g.ingest {
			st := &g.ingest[i]
			st.mu.Lock()
			clear(st.clusters)
			st.mu.Unlock()
		}
		g.pendingClusters.Store(0)
	})
}

// FuzzHandleRules feeds arbitrary bodies to the cluster controller's
// rule-push endpoint. No input may panic; any accepted table must hold
// the Distribution invariant (normalized non-negative weights), because
// the decoder routes every rule through routing.NewDistribution.
func FuzzHandleRules(f *testing.F) {
	c := NewCluster(topology.West, "")
	h := c.Handler()

	d, err := routing.NewDistribution(map[topology.ClusterID]float64{
		topology.West: 0.7, topology.East: 0.3,
	})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(routing.NewTable(3, map[routing.Key]routing.Distribution{
		{Service: "gateway", Class: "default", Cluster: topology.West}: d,
	}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"version":1,"rules":[]}`))
	f.Add([]byte(`{"version":2,"rules":[{"service":"s","class":"*","cluster":"west","weights":{"west":-1}}]}`))
	f.Add([]byte(`{"version":9,"rules":[{"weights":{"x":1e308,"y":1e308}}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/rules", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusNoContent:
			tab := c.Table()
			if tab == nil {
				t.Fatal("accepted rule push left a nil table")
			}
			for _, k := range tab.Keys() {
				dist, ok := tab.Get(k)
				if !ok {
					t.Fatalf("Keys lists %v but Get misses it", k)
				}
				var sum float64
				for _, cl := range dist.Clusters() {
					w := dist.Weight(cl)
					if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
						t.Fatalf("rule %v: invalid weight %v for %q", k, w, cl)
					}
					sum += w
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("rule %v: weights sum to %v, want 1", k, sum)
				}
			}
		case http.StatusBadRequest:
			// malformed body rejected, nothing applied
		default:
			t.Fatalf("POST /v1/rules(%q) = %d, want 204 or 400", body, rec.Code)
		}
	})
}
