// Package controlplane implements SLATE's hierarchical control plane as
// network daemons (paper §3, Fig. 2): the Global Controller, which runs
// the request routing optimization and pushes rules down, and the
// Cluster Controller, which aggregates per-service telemetry for its
// region (avoiding the scaling limitation of every instance talking to
// the global controller), tags it with the cluster ID, relays it
// upstream, and redistributes rule pushes to every local SLATE-proxy.
//
// Wire protocol (JSON over HTTP):
//
//	POST global:/v1/register   {cluster, url}          cluster joins
//	POST global:/v1/metrics    {cluster, window_ms, stats[], delta?, epoch?, removed?}
//	POST global:/v1/optimize   {}                      force a tick
//	GET  global:/v1/table                              current rules
//	GET  global:/v1/status                             demand, version
//	POST cluster:/v1/patch     routing.Patch           incremental rule push
//	POST cluster:/v1/rules     routing.Table           full rule push (legacy)
//	GET  cluster:/v1/rules[?since=N]                   table, or patch since version N
//	GET  cluster:/v1/stats                             local window peek
//
// Rule distribution is incremental: the global controller keeps a
// per-cluster shadow of the last acknowledged table slice and pushes
// only the changed rules (routing.Patch) to each cluster, concurrently
// with bounded parallelism. A cluster that answers 409 (version gap —
// e.g. it restarted) is resynced with a full patch. Telemetry ingest is
// likewise incremental: cluster controllers upload only changed
// (service, class) aggregates with a monotonically increasing epoch;
// an epoch gap makes the global answer 409, which tells the cluster to
// fall back to a full report.
package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// MetricsReport is one cluster controller's telemetry upload. A full
// report (Delta false) carries the complete window and resets the
// cluster's state at the global; a delta report carries only the stats
// that changed since the previous epoch plus the keys that disappeared.
type MetricsReport struct {
	Cluster  topology.ClusterID      `json:"cluster"`
	WindowMS int64                   `json:"window_ms"`
	Stats    []telemetry.WindowStats `json:"stats"`
	// Delta marks an incremental report: Stats holds only changed
	// aggregates; Removed lists keys absent since the previous epoch.
	Delta bool `json:"delta,omitempty"`
	// Epoch orders reports from one cluster. A delta is only accepted
	// when its epoch is exactly the successor of the last applied one;
	// otherwise the global answers 409 and the cluster resyncs with a
	// full report. Full reports set the epoch unconditionally.
	Epoch   uint64                `json:"epoch,omitempty"`
	Removed []telemetry.MetricKey `json:"removed,omitempty"`
}

// RegisterRequest announces a cluster controller to the global
// controller.
type RegisterRequest struct {
	Cluster topology.ClusterID `json:"cluster"`
	URL     string             `json:"url"`
}

// Status is the global controller's introspection snapshot.
type Status struct {
	TableVersion uint64                                    `json:"table_version"`
	Rules        int                                       `json:"rules"`
	Demand       map[string]map[topology.ClusterID]float64 `json:"demand"`
	Clusters     []topology.ClusterID                      `json:"clusters"`
	Ticks        uint64                                    `json:"ticks"`
	LastError    string                                    `json:"last_error,omitempty"`
}

// ingestStripes is the number of lock stripes sharding the telemetry
// ingest map, so concurrent cluster uploads do not serialize on one
// mutex.
const ingestStripes = 16

// pushParallelism bounds the concurrent rule pushes per tick: enough to
// overlap slow peers, small enough not to stampede the network.
const pushParallelism = 8

// clusterIngest is the global controller's telemetry state for one
// cluster: the reconstructed full window (deltas folded in) and the
// epoch of the last applied report.
type clusterIngest struct {
	epoch    uint64
	stats    map[telemetry.MetricKey]telemetry.WindowStats
	reported bool // reported since the last tick merged this cluster
	// lastRPS is the reconstructed window's total RPS after the previous
	// report, the baseline for event-driven breach detection.
	lastRPS float64
}

// ingestStripe is one lock stripe of the sharded ingest map.
type ingestStripe struct {
	mu       sync.Mutex
	clusters map[topology.ClusterID]*clusterIngest
}

// Global is the Global Controller daemon: an HTTP API around
// core.Controller plus incremental rule push-down to registered cluster
// controllers.
type Global struct {
	mu       sync.Mutex
	ctrl     *core.Controller
	clusters map[topology.ClusterID]string // cluster -> cluster-controller URL
	window   time.Duration
	ticks    uint64
	lastErr  string
	client   *http.Client

	ingest          [ingestStripes]ingestStripe
	pendingClusters atomic.Int64 // clusters reported since the last tick

	// Replication state (EnableHA; see ha.go). Guarded by mu.
	haEnabled    bool
	replica      string
	haCfg        HAConfig
	isLeader     bool
	leaseEpoch   uint64
	maxSeenEpoch uint64
	leaderURL    string
	snapCache    *core.ControllerSnapshot
	eventArmed   bool
	eventTokens  int
	eventCh      chan struct{}
	now          func() time.Time

	// pushSem (capacity 1) serializes whole push rounds — a semaphore
	// rather than a mutex because a round blocks on the fan-out's
	// WaitGroup; sentMu guards the per-cluster shadow of the last
	// acknowledged table slice within a round.
	pushSem chan struct{}
	sentMu  sync.Mutex
	sent    map[topology.ClusterID]*routing.Table

	metricsH       http.Handler
	mTicks         *obs.Counter
	mTickErrs      *obs.Counter
	mTickDur       *obs.Histogram
	mPushErrs      *obs.Counter
	mReports       *obs.Counter
	mReportErrs    *obs.Counter
	mEpochGaps     *obs.Counter
	mTableVer      *obs.Gauge
	mIterHolds     *obs.Gauge
	mReverts       *obs.Gauge
	mWarmSolves    *obs.Gauge
	mColdSolves    *obs.Gauge
	mShards        *obs.Gauge
	mSubSolves     *obs.Gauge
	mSkipSolves    *obs.Gauge
	mSearchWins    *obs.Gauge
	mSimplexWins   *obs.Gauge
	mGapAbandons   *obs.Gauge
	mStaleGroups   *obs.Gauge
	mLeader        *obs.Gauge
	mLeaseEpoch    *obs.Gauge
	mFailovers     *obs.Counter
	mStepDowns     *obs.Counter
	mSnapFetches   *obs.Counter
	mSnapRestores  *obs.Counter
	mEventBreaches *obs.Counter
	mEventSolves   *obs.Counter
	mPushDur       *obs.HistogramVec
	mPatchBytes    *obs.CounterVec
	mResyncs       *obs.CounterVec
}

// NewGlobal wraps a core controller as a daemon, instrumenting into
// obs.Default().
func NewGlobal(ctrl *core.Controller) *Global {
	reg := obs.Default()
	g := &Global{
		ctrl:     ctrl,
		clusters: make(map[topology.ClusterID]string),
		pushSem:  make(chan struct{}, 1),
		sent:     make(map[topology.ClusterID]*routing.Table),
		client:   &http.Client{Timeout: 10 * time.Second},
		eventCh:  make(chan struct{}, 1),
		now:      time.Now,
		metricsH: reg.Handler(),
		mTicks: reg.Counter("slate_global_ticks_total",
			"Optimization ticks run (including failed ones)."),
		mTickErrs: reg.Counter("slate_global_tick_errors_total",
			"Optimization ticks that returned an error."),
		mTickDur: reg.Histogram("slate_global_tick_seconds",
			"Wall time of one optimization tick (merge + solve + push).", nil),
		mPushErrs: reg.Counter("slate_global_push_errors_total",
			"Rule pushes to cluster controllers that failed."),
		mReports: reg.Counter("slate_global_reports_total",
			"Telemetry reports accepted from cluster controllers."),
		mReportErrs: reg.Counter("slate_global_report_errors_total",
			"Telemetry reports rejected as malformed."),
		mEpochGaps: reg.Counter("slate_global_report_epoch_gaps_total",
			"Delta telemetry reports rejected for an epoch gap (cluster must resync)."),
		mTableVer: reg.Gauge("slate_global_table_version",
			"Version of the routing table currently published."),
		mIterHolds: reg.Gauge("slate_global_iter_limit_holds",
			"Cumulative ticks that held the previous table because the solver hit its iteration budget."),
		mReverts: reg.Gauge("slate_global_rule_reverts",
			"Cumulative ticks that reverted to a safe table."),
		mWarmSolves: reg.Gauge("slate_global_lp_warm_solves",
			"Cumulative LP solves that reused the previous basis."),
		mColdSolves: reg.Gauge("slate_global_lp_cold_solves",
			"Cumulative LP solves from scratch."),
		mShards: reg.Gauge("slate_global_subproblems",
			"Independent optimizer subproblems (0 when running monolithic)."),
		mSubSolves: reg.Gauge("slate_global_subproblem_solves",
			"Cumulative decomposed subproblem solves actually run."),
		mSkipSolves: reg.Gauge("slate_global_subproblem_skips",
			"Cumulative subproblem solves skipped because inputs were unchanged."),
		mSearchWins: reg.Gauge("slate_global_search_solves",
			"Cumulative dirty-shard solves served by the anytime local search."),
		mSimplexWins: reg.Gauge("slate_global_search_simplex_wins",
			"Cumulative raced solves where the search lost and the simplex ran."),
		mGapAbandons: reg.Gauge("slate_global_search_gap_abandoned",
			"Cumulative search candidates rejected (infeasible or beyond the configured gap)."),
		mStaleGroups: reg.Gauge("slate_global_pending_reports",
			"Clusters that reported telemetry not yet merged by a tick."),
		mLeader: reg.Gauge("slate_global_is_leader",
			"1 when this replica holds the leader lease (or runs unreplicated)."),
		mLeaseEpoch: reg.Gauge("slate_global_lease_epoch",
			"Leader-lease epoch this replica last campaigned with."),
		mFailovers: reg.Counter("slate_global_leader_elections_won_total",
			"Elections this replica won (transitions into leadership)."),
		mStepDowns: reg.Counter("slate_global_leader_stepdowns_total",
			"Times this replica relinquished leadership after a fencing rejection."),
		mSnapFetches: reg.Counter("slate_global_snapshot_fetches_total",
			"Leader warm-state snapshots fetched while following."),
		mSnapRestores: reg.Counter("slate_global_snapshot_restores_total",
			"Cached snapshots restored on winning an election."),
		mEventBreaches: reg.Counter("slate_global_event_breaches_total",
			"Telemetry reports whose load swing armed an event-driven re-solve."),
		mEventSolves: reg.Counter("slate_global_event_solves_total",
			"Immediate re-solves run outside the scheduled tick."),
		mPushDur: reg.HistogramVec("slate_global_push_seconds",
			"Wall time of one rule push to a cluster controller.", nil, "cluster"),
		mPatchBytes: reg.CounterVec("slate_global_patch_bytes_total",
			"Rule-push payload bytes sent, by destination cluster.", "cluster"),
		mResyncs: reg.CounterVec("slate_global_push_resyncs_total",
			"Rule pushes that fell back to a full-table resync after a version gap.", "cluster"),
	}
	for i := range g.ingest {
		g.ingest[i].clusters = make(map[topology.ClusterID]*clusterIngest)
	}
	return g
}

// stripe returns the ingest lock stripe owning a cluster's telemetry.
func (g *Global) stripe(c topology.ClusterID) *ingestStripe {
	h := fnv.New32a()
	h.Write([]byte(c))
	return &g.ingest[h.Sum32()%ingestStripes]
}

// SetTransport swaps the HTTP transport used for rule pushes (fault
// injection, tests). Call before Run.
func (g *Global) SetTransport(rt http.RoundTripper) {
	g.client.Transport = rt
}

// Handler returns the daemon's HTTP API.
func (g *Global) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", g.handleRegister)
	mux.HandleFunc("POST /v1/metrics", g.handleMetrics)
	mux.HandleFunc("POST /v1/optimize", g.handleOptimize)
	mux.HandleFunc("GET /v1/table", g.handleTable)
	mux.HandleFunc("GET /v1/status", g.handleStatus)
	mux.HandleFunc("GET /v1/health", g.handleHealth)
	mux.HandleFunc("GET /v1/snapshot", g.handleSnapshot)
	mux.Handle("GET "+obs.MetricsPath, g.metricsH)
	return mux
}

func (g *Global) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Cluster == "" || req.URL == "" {
		http.Error(w, "cluster and url required", http.StatusBadRequest)
		return
	}
	g.mu.Lock()
	g.clusters[req.Cluster] = req.URL
	g.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleMetrics ingests one telemetry report into the cluster's striped
// state map. Full reports replace the cluster's window outright; delta
// reports fold changed stats in and delete removed keys, but only when
// their epoch is the exact successor of the last applied one — any gap
// (lost report, global restart) gets 409 so the cluster resyncs.
func (g *Global) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var rep MetricsReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		g.mReportErrs.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if rep.WindowMS > 0 {
		g.mu.Lock()
		g.window = time.Duration(rep.WindowMS) * time.Millisecond
		g.mu.Unlock()
	}
	st := g.stripe(rep.Cluster)
	st.mu.Lock()
	ci := st.clusters[rep.Cluster]
	if rep.Delta {
		if ci == nil || rep.Epoch != ci.epoch+1 {
			st.mu.Unlock()
			g.mEpochGaps.Inc()
			http.Error(w, "epoch gap: full report required", http.StatusConflict)
			return
		}
		for _, ws := range rep.Stats {
			ci.stats[ws.Key] = ws
		}
		for _, k := range rep.Removed {
			delete(ci.stats, k)
		}
		ci.epoch = rep.Epoch
	} else {
		next := &clusterIngest{
			epoch: rep.Epoch,
			stats: make(map[telemetry.MetricKey]telemetry.WindowStats, len(rep.Stats)),
		}
		for _, ws := range rep.Stats {
			next.stats[ws.Key] = ws
		}
		if ci != nil {
			next.reported = ci.reported
			next.lastRPS = ci.lastRPS
		}
		st.clusters[rep.Cluster] = next
		ci = next
	}
	if !ci.reported {
		ci.reported = true
		g.mStaleGroups.Set(float64(g.pendingClusters.Add(1)))
	}
	// Event-driven re-solve trigger: compare the reconstructed window's
	// total load against the previous report's. Summed in sorted key
	// order so the total (and hence the breach decision near the
	// threshold) never depends on map iteration order.
	lastRPS := ci.lastRPS
	keys := make([]telemetry.MetricKey, 0, len(ci.stats))
	for k := range ci.stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessMetricKey(keys[i], keys[j]) })
	var curRPS float64
	for _, k := range keys {
		curRPS += ci.stats[k].RPS
	}
	ci.lastRPS = curRPS
	st.mu.Unlock()
	g.mReports.Inc()
	g.noteClusterLoad(lastRPS, curRPS)
	w.WriteHeader(http.StatusAccepted)
}

// snapshotIngest collects the reconstructed windows of every cluster
// that reported since the last tick and clears the reported marks.
// State maps are retained so the next delta has a base; clusters that
// stay silent simply contribute nothing, which lets the controller's
// demand estimate decay exactly as it did with full fan-in.
func (g *Global) snapshotIngest() [][]telemetry.WindowStats {
	var groups [][]telemetry.WindowStats
	for i := range g.ingest {
		st := &g.ingest[i]
		st.mu.Lock()
		// Visit clusters and their stat keys in sorted order: the merged
		// windows feed float-averaging demand estimation, so group and
		// window order is visible in the optimizer input and must not
		// depend on map iteration.
		ids := make([]topology.ClusterID, 0, len(st.clusters))
		for id := range st.clusters {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			ci := st.clusters[id]
			if !ci.reported {
				continue
			}
			ci.reported = false
			keys := make([]telemetry.MetricKey, 0, len(ci.stats))
			for k := range ci.stats {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return lessMetricKey(keys[a], keys[b]) })
			group := make([]telemetry.WindowStats, 0, len(keys))
			for _, k := range keys {
				group = append(group, ci.stats[k])
			}
			groups = append(groups, group)
		}
		st.mu.Unlock()
	}
	g.pendingClusters.Store(0)
	return groups
}

func lessMetricKey(a, b telemetry.MetricKey) bool {
	if a.Service != b.Service {
		return a.Service < b.Service
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Cluster < b.Cluster
}

func (g *Global) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if err := g.Tick(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	g.handleTable(w, r)
}

func (g *Global) handleTable(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	tab := g.ctrl.Table()
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(tab)
}

func (g *Global) handleStatus(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	st := Status{
		TableVersion: g.ctrl.Table().Version,
		Rules:        g.ctrl.Table().Len(),
		Demand:       g.ctrl.Demand(),
		Ticks:        g.ticks,
		LastError:    g.lastErr,
	}
	for c := range g.clusters {
		st.Clusters = append(st.Clusters, c)
	}
	g.mu.Unlock()
	// The status payload is wire-visible JSON: emit clusters in a stable
	// order rather than whatever the map range produced.
	sort.Slice(st.Clusters, func(i, j int) bool { return st.Clusters[i] < st.Clusters[j] })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// Tick merges the telemetry reported since the last tick, runs one
// optimization round, and pushes rule patches to every registered
// cluster controller. The context bounds the rule pushes so shutdown
// (or a cancelled /v1/optimize request) does not hang on a wedged
// cluster controller.
func (g *Global) Tick(ctx context.Context) error {
	start := time.Now()
	groups := g.snapshotIngest()
	g.mu.Lock()
	window := g.window
	if window == 0 {
		window = time.Second
	}
	merged := telemetry.Merge(groups...)
	table, err := g.ctrl.Tick(merged, window)
	g.ticks++
	if err != nil {
		g.lastErr = err.Error()
	} else {
		g.lastErr = ""
	}
	targets := make(map[topology.ClusterID]string, len(g.clusters))
	for c, u := range g.clusters {
		targets[c] = u
	}
	g.mTableVer.Set(float64(g.ctrl.Table().Version))
	g.mIterHolds.Set(float64(g.ctrl.IterLimitHolds()))
	g.mReverts.Set(float64(g.ctrl.Reverts()))
	solves := g.ctrl.OptimizerStats()
	g.mWarmSolves.Set(float64(solves.WarmSolves))
	g.mColdSolves.Set(float64(solves.ColdSolves))
	g.mShards.Set(float64(solves.Shards))
	g.mSubSolves.Set(float64(solves.SubSolves))
	g.mSkipSolves.Set(float64(solves.SkippedSolves))
	g.mSearchWins.Set(float64(solves.SearchSolves))
	g.mSimplexWins.Set(float64(solves.SimplexWins))
	g.mGapAbandons.Set(float64(solves.GapAbandoned))
	g.mStaleGroups.Set(float64(g.pendingClusters.Load()))
	g.mu.Unlock()

	g.mTicks.Inc()
	if err != nil {
		g.mTickErrs.Inc()
		g.mTickDur.Observe(time.Since(start).Seconds())
		return err
	}
	pushErr := g.push(ctx, table, targets)
	if pushErr != nil {
		// Every errored tick counts as a tick error, whichever phase
		// failed — the push path used to skip this counter, so a wedged
		// cluster controller left slate_global_tick_errors_total flat
		// while ticks were in fact failing.
		g.mPushErrs.Inc()
		g.mTickErrs.Inc()
	}
	g.mTickDur.Observe(time.Since(start).Seconds())
	return pushErr
}

// push distributes the table incrementally: for each cluster it diffs
// the cluster's slice of the table against the last acknowledged push
// and sends only the changed rules, fanning out concurrently with
// bounded parallelism so one slow peer does not stall the rest. An
// empty patch is still sent — it confirms the table version and renews
// the proxies' staleness TTL downstream. A 409 from the cluster
// (version gap: it restarted or missed a push) triggers an immediate
// full-table resync.
func (g *Global) push(ctx context.Context, table *routing.Table, targets map[topology.ClusterID]string) error {
	g.pushSem <- struct{}{}
	defer func() { <-g.pushSem }()

	sem := make(chan struct{}, pushParallelism)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for c, u := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(c topology.ClusterID, u string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := g.pushOne(ctx, c, u, table); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("push to %s: %w", c, err)
				}
				errMu.Unlock()
			}
		}(c, u)
	}
	wg.Wait()
	return firstErr
}

// pushOne sends one cluster its rule patch, resyncing with a full patch
// on a version gap. The shadow of what the cluster acknowledged only
// advances on success, so a failed push is retried as a (larger) patch
// next tick.
func (g *Global) pushOne(ctx context.Context, c topology.ClusterID, u string, table *routing.Table) error {
	start := time.Now()
	defer func() {
		g.mPushDur.With(string(c)).Observe(time.Since(start).Seconds())
	}()

	desired := table.Restrict(c)
	g.sentMu.Lock()
	prev := g.sent[c]
	g.sentMu.Unlock()

	patch := routing.MakePatch(prev, desired)
	if err := g.postPatch(ctx, c, u, patch); err != nil {
		code, ok := statusCode(err)
		switch {
		case ok && code == http.StatusConflict && rejectReason(err) != "":
			// Fenced out: the cluster promised a higher lease epoch (or a
			// newer table) to another replica. Resyncing would be exactly
			// the deposed-leader overwrite the fence exists to stop — step
			// down and let the next campaign sort out who leads.
			g.stepDown(rejectReason(err))
			return err
		case ok && code == http.StatusConflict:
			// The cluster is not at the version we believe it is (it
			// restarted, or a push went missing): resync in full.
			g.mResyncs.With(string(c)).Inc()
			if err := g.postPatch(ctx, c, u, routing.FullPatch(desired)); err != nil {
				return err
			}
		case ok && (code == http.StatusNotFound || code == http.StatusMethodNotAllowed):
			// Pre-patch peer (rolling upgrade): fall back to the legacy
			// full-table push.
			body, err := json.Marshal(desired)
			if err != nil {
				return err
			}
			g.mPatchBytes.With(string(c)).Add(uint64(len(body)))
			if err := postJSONHeaders(ctx, g.client, u+"/v1/rules", body, g.publisherHeaders()); err != nil {
				return err
			}
		default:
			return err
		}
	}
	g.sentMu.Lock()
	g.sent[c] = desired
	g.sentMu.Unlock()
	return nil
}

// postPatch marshals and posts one patch, accounting its wire bytes.
// Replicated pushes carry the leader's lease epoch so acceptors can
// fence out a deposed leader.
func (g *Global) postPatch(ctx context.Context, c topology.ClusterID, u string, p *routing.Patch) error {
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	g.mPatchBytes.With(string(c)).Add(uint64(len(body)))
	return postJSONHeaders(ctx, g.client, u+"/v1/patch", body, g.publisherHeaders())
}

// Run ticks the controller every period until the context is cancelled.
func (g *Global) Run(ctx context.Context, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.Tick(ctx) // errors surface via /v1/status
		case <-ctx.Done():
			return
		}
	}
}
