// Package controlplane implements SLATE's hierarchical control plane as
// network daemons (paper §3, Fig. 2): the Global Controller, which runs
// the request routing optimization and pushes rules down, and the
// Cluster Controller, which aggregates per-service telemetry for its
// region (avoiding the scaling limitation of every instance talking to
// the global controller), tags it with the cluster ID, relays it
// upstream, and redistributes rule pushes to every local SLATE-proxy.
//
// Wire protocol (JSON over HTTP):
//
//	POST global:/v1/register   {cluster, url}          cluster joins
//	POST global:/v1/metrics    {cluster, window_ms, stats[]}
//	POST global:/v1/optimize   {}                      force a tick
//	GET  global:/v1/table                              current rules
//	GET  global:/v1/status                             demand, version
//	POST cluster:/v1/rules     routing.Table           rule push
//	GET  cluster:/v1/stats                             local window peek
package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/telemetry"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// MetricsReport is one cluster controller's telemetry upload.
type MetricsReport struct {
	Cluster  topology.ClusterID      `json:"cluster"`
	WindowMS int64                   `json:"window_ms"`
	Stats    []telemetry.WindowStats `json:"stats"`
}

// RegisterRequest announces a cluster controller to the global
// controller.
type RegisterRequest struct {
	Cluster topology.ClusterID `json:"cluster"`
	URL     string             `json:"url"`
}

// Status is the global controller's introspection snapshot.
type Status struct {
	TableVersion uint64                                    `json:"table_version"`
	Rules        int                                       `json:"rules"`
	Demand       map[string]map[topology.ClusterID]float64 `json:"demand"`
	Clusters     []topology.ClusterID                      `json:"clusters"`
	Ticks        uint64                                    `json:"ticks"`
	LastError    string                                    `json:"last_error,omitempty"`
}

// Global is the Global Controller daemon: an HTTP API around
// core.Controller plus rule push-down to registered cluster
// controllers.
type Global struct {
	mu       sync.Mutex
	ctrl     *core.Controller
	clusters map[topology.ClusterID]string // cluster -> cluster-controller URL
	pending  [][]telemetry.WindowStats
	window   time.Duration
	ticks    uint64
	lastErr  string
	client   *http.Client

	metricsH     http.Handler
	mTicks       *obs.Counter
	mTickErrs    *obs.Counter
	mTickDur     *obs.Histogram
	mPushErrs    *obs.Counter
	mReports     *obs.Counter
	mReportErrs  *obs.Counter
	mTableVer    *obs.Gauge
	mIterHolds   *obs.Gauge
	mReverts     *obs.Gauge
	mWarmSolves  *obs.Gauge
	mColdSolves  *obs.Gauge
	mStaleGroups *obs.Gauge
}

// NewGlobal wraps a core controller as a daemon, instrumenting into
// obs.Default().
func NewGlobal(ctrl *core.Controller) *Global {
	reg := obs.Default()
	return &Global{
		ctrl:     ctrl,
		clusters: make(map[topology.ClusterID]string),
		client:   &http.Client{Timeout: 10 * time.Second},
		metricsH: reg.Handler(),
		mTicks: reg.Counter("slate_global_ticks_total",
			"Optimization ticks run (including failed ones)."),
		mTickErrs: reg.Counter("slate_global_tick_errors_total",
			"Optimization ticks that returned an error."),
		mTickDur: reg.Histogram("slate_global_tick_seconds",
			"Wall time of one optimization tick (merge + solve + push).", nil),
		mPushErrs: reg.Counter("slate_global_push_errors_total",
			"Rule pushes to cluster controllers that failed."),
		mReports: reg.Counter("slate_global_reports_total",
			"Telemetry reports accepted from cluster controllers."),
		mReportErrs: reg.Counter("slate_global_report_errors_total",
			"Telemetry reports rejected as malformed."),
		mTableVer: reg.Gauge("slate_global_table_version",
			"Version of the routing table currently published."),
		mIterHolds: reg.Gauge("slate_global_iter_limit_holds",
			"Cumulative ticks that held the previous table because the solver hit its iteration budget."),
		mReverts: reg.Gauge("slate_global_rule_reverts",
			"Cumulative ticks that reverted to a safe table."),
		mWarmSolves: reg.Gauge("slate_global_lp_warm_solves",
			"Cumulative LP solves that reused the previous basis."),
		mColdSolves: reg.Gauge("slate_global_lp_cold_solves",
			"Cumulative LP solves from scratch."),
		mStaleGroups: reg.Gauge("slate_global_pending_reports",
			"Telemetry report groups waiting to be merged at the next tick."),
	}
}

// SetTransport swaps the HTTP transport used for rule pushes (fault
// injection, tests). Call before Run.
func (g *Global) SetTransport(rt http.RoundTripper) {
	g.client.Transport = rt
}

// Handler returns the daemon's HTTP API.
func (g *Global) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", g.handleRegister)
	mux.HandleFunc("POST /v1/metrics", g.handleMetrics)
	mux.HandleFunc("POST /v1/optimize", g.handleOptimize)
	mux.HandleFunc("GET /v1/table", g.handleTable)
	mux.HandleFunc("GET /v1/status", g.handleStatus)
	mux.Handle("GET "+obs.MetricsPath, g.metricsH)
	return mux
}

func (g *Global) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Cluster == "" || req.URL == "" {
		http.Error(w, "cluster and url required", http.StatusBadRequest)
		return
	}
	g.mu.Lock()
	g.clusters[req.Cluster] = req.URL
	g.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (g *Global) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var rep MetricsReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		g.mReportErrs.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g.mu.Lock()
	g.pending = append(g.pending, rep.Stats)
	if rep.WindowMS > 0 {
		g.window = time.Duration(rep.WindowMS) * time.Millisecond
	}
	g.mStaleGroups.Set(float64(len(g.pending)))
	g.mu.Unlock()
	g.mReports.Inc()
	w.WriteHeader(http.StatusAccepted)
}

func (g *Global) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if err := g.Tick(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	g.handleTable(w, r)
}

func (g *Global) handleTable(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	tab := g.ctrl.Table()
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(tab)
}

func (g *Global) handleStatus(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	st := Status{
		TableVersion: g.ctrl.Table().Version,
		Rules:        g.ctrl.Table().Len(),
		Demand:       g.ctrl.Demand(),
		Ticks:        g.ticks,
		LastError:    g.lastErr,
	}
	for c := range g.clusters {
		st.Clusters = append(st.Clusters, c)
	}
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// Tick merges pending telemetry, runs one optimization round, and
// pushes the resulting table to every registered cluster controller.
// The context bounds the rule pushes so shutdown (or a cancelled
// /v1/optimize request) does not hang on a wedged cluster controller.
func (g *Global) Tick(ctx context.Context) error {
	start := time.Now()
	g.mu.Lock()
	groups := g.pending
	g.pending = nil
	window := g.window
	if window == 0 {
		window = time.Second
	}
	merged := telemetry.Merge(groups...)
	table, err := g.ctrl.Tick(merged, window)
	g.ticks++
	if err != nil {
		g.lastErr = err.Error()
	} else {
		g.lastErr = ""
	}
	targets := make(map[topology.ClusterID]string, len(g.clusters))
	for c, u := range g.clusters {
		targets[c] = u
	}
	g.mTableVer.Set(float64(g.ctrl.Table().Version))
	g.mIterHolds.Set(float64(g.ctrl.IterLimitHolds()))
	g.mReverts.Set(float64(g.ctrl.Reverts()))
	solves := g.ctrl.OptimizerStats()
	g.mWarmSolves.Set(float64(solves.WarmSolves))
	g.mColdSolves.Set(float64(solves.ColdSolves))
	g.mStaleGroups.Set(0)
	g.mu.Unlock()

	g.mTicks.Inc()
	if err != nil {
		g.mTickErrs.Inc()
		g.mTickDur.Observe(time.Since(start).Seconds())
		return err
	}
	pushErr := g.push(ctx, table, targets)
	if pushErr != nil {
		g.mPushErrs.Inc()
	}
	g.mTickDur.Observe(time.Since(start).Seconds())
	return pushErr
}

func (g *Global) push(ctx context.Context, table *routing.Table, targets map[topology.ClusterID]string) error {
	body, err := json.Marshal(table)
	if err != nil {
		return err
	}
	var firstErr error
	for c, u := range targets {
		if err := postJSON(ctx, g.client, u+"/v1/rules", body); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("push to %s: %w", c, err)
			}
		}
	}
	return firstErr
}

// Run ticks the controller every period until the context is cancelled.
func (g *Global) Run(ctx context.Context, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.Tick(ctx) // errors surface via /v1/status
		case <-ctx.Done():
			return
		}
	}
}
