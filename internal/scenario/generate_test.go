package scenario

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/simrun"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// genDigest is a compact, deterministic summary of a Generated bundle.
// The golden test pins one for a 100-cluster/1000-service spec so any
// unintended change to the generator's output is caught.
type genDigest struct {
	Clusters     int     `json:"clusters"`
	Services     int     `json:"services"` // incl. ingress
	Classes      int     `json:"classes"`
	CallNodes    int     `json:"call_nodes"`
	Rules        int     `json:"rules"`
	Workload     int     `json:"workload_specs"`
	Dynamics     int     `json:"dynamics"`
	BaseRPS      float64 `json:"base_rps"` // sum of first-phase rates
	TopologyHash uint64  `json:"topology_hash"`
	AppHash      uint64  `json:"app_hash"`
	TableHash    uint64  `json:"table_hash"`
	WorkloadHash uint64  `json:"workload_hash"`
	DynamicsHash uint64  `json:"dynamics_hash"`
}

func digest(g *Generated) genDigest {
	d := genDigest{
		Clusters: len(g.Top.ClusterIDs()),
		Services: len(g.App.Services),
		Classes:  len(g.App.Classes),
		Rules:    g.Table.Len(),
		Workload: len(g.Workload),
		Dynamics: len(g.Dynamics),
	}
	topo := fnv.New64a()
	ids := g.Top.ClusterIDs()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			fmt.Fprintf(topo, "%s-%s:%d;", a, b, g.Top.RTT(a, b))
		}
	}
	d.TopologyHash = topo.Sum64()

	app := fnv.New64a()
	var sids []string
	for id := range g.App.Services {
		sids = append(sids, string(id))
	}
	sort.Strings(sids)
	for _, id := range sids {
		svc := g.App.Services[appgraph.ServiceID(id)]
		for _, c := range svc.Clusters(g.Top) {
			p := svc.Placement[c]
			fmt.Fprintf(app, "%s@%s:%dx%d;", id, c, p.Replicas, p.Concurrency)
		}
	}
	for _, cl := range g.App.Classes {
		cl.Root.Walk(func(n *appgraph.CallNode) {
			d.CallNodes++
			fmt.Fprintf(app, "%s/%s:%d:%v:%d:%s:%.3f:%d:%d;", cl.Name, n.Service,
				n.Count, n.Parallel, n.Work.MeanServiceTime, n.Work.Dist,
				n.Work.TailAlpha, n.Work.RequestBytes, n.Work.ResponseBytes)
		})
	}
	d.AppHash = app.Sum64()

	tab := fnv.New64a()
	keys := g.Table.Keys()
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Cluster < b.Cluster
	})
	for _, k := range keys {
		dist, _ := g.Table.Get(k)
		fmt.Fprintf(tab, "%s=", k)
		for _, c := range dist.Clusters() {
			fmt.Fprintf(tab, "%s:%.6f,", c, dist.Weight(c))
		}
	}
	d.TableHash = tab.Sum64()

	wl := fnv.New64a()
	for _, spec := range g.Workload {
		fmt.Fprintf(wl, "%s@%s:", spec.Class, spec.Cluster)
		for _, ph := range spec.Phases {
			fmt.Fprintf(wl, "%.4f/%d,", ph.RPS, ph.Duration)
		}
		if len(spec.Phases) > 0 {
			d.BaseRPS += spec.Phases[0].RPS
		}
	}
	d.BaseRPS = math.Round(d.BaseRPS*100) / 100
	d.WorkloadHash = wl.Sum64()

	dyn := fnv.New64a()
	for _, ev := range g.Dynamics {
		fmt.Fprintf(dyn, "%d:%s@%s:%d;", ev.At, ev.Service, ev.Cluster, ev.Replicas)
	}
	d.DynamicsHash = dyn.Sum64()
	return d
}

func TestGenerateStablePerSeed(t *testing.T) {
	spec := GenSpec{Seed: 11, Clusters: 12, Services: 60, Classes: 10,
		ChurnEvents: 6, HotspotClasses: 2, StormClasses: 2, TailAlpha: 1.7}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := digest(a), digest(b); !reflect.DeepEqual(da, db) {
		t.Errorf("same spec generated different scenarios:\n%+v\n%+v", da, db)
	}
	spec.Seed = 12
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if da, dc := digest(a), digest(c); da.AppHash == dc.AppHash && da.TopologyHash == dc.TopologyHash {
		t.Error("different seeds generated identical scenarios")
	}
}

func TestGenerateTreeProperties(t *testing.T) {
	spec := GenSpec{Seed: 3, Clusters: 10, Services: 80, Classes: 12,
		FanoutMean: 2, MaxFanout: 3}
	g, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.App.Validate(g.Top); err != nil {
		t.Fatalf("generated app invalid: %v", err)
	}
	used := map[appgraph.ServiceID]int{}
	for _, cl := range g.App.Classes {
		if cl.Root.Service != IngressService {
			t.Fatalf("class %s roots at %s, want %s", cl.Name, cl.Root.Service, IngressService)
		}
		cl.Root.Walk(func(n *appgraph.CallNode) {
			if len(n.Children) > spec.MaxFanout {
				t.Errorf("class %s node %s has fan-out %d > MaxFanout %d",
					cl.Name, n.Service, len(n.Children), spec.MaxFanout)
			}
			if n.Service != IngressService {
				used[n.Service]++
			}
		})
	}
	// Acyclic and connected: the generator partitions services across
	// classes, so every generated service appears in exactly one tree,
	// exactly once — no service can be its own (transitive) ancestor.
	if len(used) != spec.Services {
		t.Errorf("trees reference %d distinct services, want all %d", len(used), spec.Services)
	}
	for sid, n := range used {
		if n != 1 {
			t.Errorf("service %s appears %d times across trees, want exactly 1", sid, n)
		}
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	g, err := Generate(GenSpec{Seed: 5, Clusters: 6, Services: 30, Classes: 5, TailAlpha: 1.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range g.App.Classes {
		cl.Root.Walk(func(n *appgraph.CallNode) {
			if n.Service == IngressService {
				return
			}
			if n.Work.Dist != appgraph.DistPareto || n.Work.TailAlpha != 1.6 { //slate:nolint floatcmp -- TailAlpha is copied verbatim from the spec, never computed
				t.Errorf("node %s: dist=%v alpha=%v, want pareto/1.6", n.Service, n.Work.Dist, n.Work.TailAlpha)
			}
		})
	}
	exp, err := Generate(GenSpec{Seed: 5, Clusters: 6, Services: 30, Classes: 5})
	if err != nil {
		t.Fatal(err)
	}
	exp.App.Classes[0].Root.Walk(func(n *appgraph.CallNode) {
		if n.Work.Dist == appgraph.DistPareto {
			t.Errorf("TailAlpha=0 produced a Pareto node at %s", n.Service)
		}
	})
}

func TestGenerateLocalityTable(t *testing.T) {
	const rf = 0.2
	g, err := Generate(GenSpec{Seed: 9, Clusters: 10, Services: 50, Classes: 8,
		Spread: 3, RemoteFraction: rf})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Table.Validate(g.Top); err != nil {
		t.Fatalf("generated table invalid: %v", err)
	}
	for _, k := range g.Table.Keys() {
		dist, _ := g.Table.Get(k)
		svc := g.App.Services[appgraph.ServiceID(k.Service)]
		sum := 0.0
		for _, c := range dist.Clusters() {
			if !svc.PlacedIn(c) {
				t.Fatalf("rule %s routes to %s where %s is not placed", k, c, k.Service)
			}
			sum += dist.Weight(c)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("rule %s weights sum to %v", k, sum)
		}
		if svc.PlacedIn(k.Cluster) {
			want := 1 - rf
			if len(dist.Clusters()) == 1 {
				want = 1
			}
			if got := dist.Weight(k.Cluster); math.Abs(got-want) > 1e-9 {
				t.Fatalf("rule %s keeps %.3f local, want %.3f", k, got, want)
			}
		}
	}
}

func TestGenerateWorkloadRates(t *testing.T) {
	const total = 5000.0
	g, err := Generate(GenSpec{Seed: 21, Clusters: 12, Services: 60, Classes: 10,
		TotalRPS: total, HotspotClasses: 3, StormClasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Per-class totals must sum to TotalRPS in every phase index 0:
	// hotspot phases redistribute (boost one cluster, cool the rest)
	// but conserve the class total; storms only raise later phases.
	sum := 0.0
	for _, spec := range g.Workload {
		sum += spec.Phases[0].RPS
	}
	if math.Abs(sum-total)/total > 0.01 {
		t.Errorf("first-phase offered load %.1f RPS, want ~%.0f", sum, total)
	}
	hotspots, storms := 0, 0
	for _, spec := range g.Workload {
		if len(spec.Phases) > 2 {
			hotspots++
		} else if len(spec.Phases) == 3 {
			storms++
		}
	}
	if hotspots == 0 {
		t.Error("no hotspot phase schedules generated")
	}
}

func TestGenerateDynamicsValid(t *testing.T) {
	spec := GenSpec{Seed: 2, Clusters: 8, Services: 40, Classes: 6, ChurnEvents: 12}
	g, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Dynamics) != spec.ChurnEvents {
		t.Fatalf("generated %d churn events, want %d", len(g.Dynamics), spec.ChurnEvents)
	}
	scn := g.Scenario("churn")
	if err := scn.Validate(); err != nil {
		t.Fatalf("scenario with churn invalid: %v", err)
	}
	for _, ev := range g.Dynamics {
		if ev.At < g.Spec.Warmup || ev.At > g.Spec.Duration {
			t.Errorf("churn event at %v outside (%v, %v)", ev.At, g.Spec.Warmup, g.Spec.Duration)
		}
	}
}

// TestGenerateRunsUnderSimrun is the end-to-end property: a generated
// scenario runs under both the serial and the parallel engine, and the
// parallel run is shard-count deterministic.
func TestGenerateRunsUnderSimrun(t *testing.T) {
	g, err := Generate(GenSpec{Seed: 17, Clusters: 8, Services: 32, Classes: 6,
		TotalRPS: 300, TailAlpha: 1.8, ChurnEvents: 4, HotspotClasses: 1, StormClasses: 1,
		Duration: 6 * time.Second, Warmup: 1 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	scn := g.Scenario("gen-e2e")
	serial, err := simrun.Run(scn, g.Policy())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Completed == 0 || serial.Availability < 0.99 {
		t.Fatalf("serial run: completed=%d availability=%v", serial.Completed, serial.Availability)
	}
	par, err := simrun.RunParallel(scn, g.Policy(), simrun.ParallelOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Generated != serial.Generated {
		t.Errorf("parallel generated %d requests, serial %d", par.Generated, serial.Generated)
	}
	if par.Completed == 0 {
		t.Error("parallel run completed nothing")
	}
	par2, err := simrun.RunParallel(scn, g.Policy(), simrun.ParallelOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Completed != par2.Completed || par.Mean != par2.Mean {
		t.Errorf("parallel run not reproducible: %d/%v vs %d/%v",
			par.Completed, par.Mean, par2.Completed, par2.Mean)
	}
}

// TestGenerateGolden100 pins the full digest of the planet-scale
// reference spec: 100 clusters, 1000 services, 125 classes. Regenerate
// with `go test ./internal/scenario/ -run Golden -update` after an
// intentional generator change.
func TestGenerateGolden100(t *testing.T) {
	g, err := Generate(Gen100Spec())
	if err != nil {
		t.Fatal(err)
	}
	got := digest(g)
	if got.Clusters != 100 || got.Services != 1001 || got.Classes != 125 {
		t.Fatalf("reference spec materialized %d clusters / %d services / %d classes",
			got.Clusters, got.Services, got.Classes)
	}
	path := filepath.Join("testdata", "gen100.golden.json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	var want genDigest
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("100-cluster digest drifted from golden fixture:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestGenerateRejectsNothing(t *testing.T) {
	// The zero spec must default to something valid.
	g, err := Generate(GenSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Top.ClusterIDs()) == 0 || len(g.App.Classes) == 0 {
		t.Error("zero spec generated an empty scenario")
	}
}
