// Package scenario loads experiment/deployment descriptions from JSON
// files — the configuration surface of the slatectl, slate-global and
// slate-emul commands. A scenario file names a topology, an application
// (either one of the paper's presets or a fully explicit service/class
// graph), and per-class per-cluster demand.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// File is the top-level scenario document.
type File struct {
	Topology TopologySpec                  `json:"topology"`
	App      AppSpec                       `json:"app"`
	Demand   map[string]map[string]float64 `json:"demand"`
}

// TopologySpec describes clusters and links.
type TopologySpec struct {
	// Preset selects a built-in topology: "gcp" or "two-clusters".
	Preset string `json:"preset,omitempty"`
	// RTTMS applies to the "two-clusters" preset (default 40).
	RTTMS float64 `json:"rtt_ms,omitempty"`
	// DefaultEgressPerGB prices unlisted links (explicit topologies).
	DefaultEgressPerGB float64       `json:"default_egress_per_gb,omitempty"`
	Clusters           []ClusterSpec `json:"clusters,omitempty"`
	Links              []LinkSpec    `json:"links,omitempty"`
}

// ClusterSpec declares one cluster.
type ClusterSpec struct {
	ID     string `json:"id"`
	Region string `json:"region,omitempty"`
}

// LinkSpec declares one inter-cluster link.
type LinkSpec struct {
	A           string  `json:"a"`
	B           string  `json:"b"`
	RTTMS       float64 `json:"rtt_ms"`
	EgressPerGB float64 `json:"egress_per_gb,omitempty"`
}

// AppSpec describes the application: a named preset with options, or an
// explicit service/class graph.
type AppSpec struct {
	// Preset: "linear-chain", "anomaly-detection", "two-class",
	// "fanout". Empty means explicit.
	Preset string `json:"preset,omitempty"`
	// PresetOptions passes preset knobs (subset per preset):
	// services, mean_service_time_ms, replicas, concurrency, clusters,
	// width, light_ms, heavy_ms, metrics_bytes, response_ratio,
	// db_clusters.
	PresetOptions map[string]any `json:"preset_options,omitempty"`

	Services []ServiceSpec `json:"services,omitempty"`
	Classes  []ClassSpec   `json:"classes,omitempty"`
	Name     string        `json:"name,omitempty"`
}

// ServiceSpec declares one service and its placements.
type ServiceSpec struct {
	ID        string                   `json:"id"`
	Placement map[string]PlacementSpec `json:"placement"`
}

// PlacementSpec sizes a pool.
type PlacementSpec struct {
	Replicas    int `json:"replicas"`
	Concurrency int `json:"concurrency"`
}

// ClassSpec declares one traffic class.
type ClassSpec struct {
	Name string   `json:"name"`
	Root CallSpec `json:"root"`
}

// CallSpec is one call-tree node.
type CallSpec struct {
	Service       string     `json:"service"`
	Method        string     `json:"method"`
	Path          string     `json:"path"`
	ServiceTimeMS float64    `json:"service_time_ms"`
	Deterministic bool       `json:"deterministic,omitempty"`
	RequestBytes  int64      `json:"request_bytes,omitempty"`
	ResponseBytes int64      `json:"response_bytes,omitempty"`
	Count         int        `json:"count,omitempty"`
	Parallel      bool       `json:"parallel,omitempty"`
	Children      []CallSpec `json:"children,omitempty"`
}

// Load reads and materializes a scenario file.
func Load(path string) (*topology.Topology, *appgraph.App, core.Demand, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, nil, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	return f.Materialize()
}

// Materialize converts the document into model objects and validates
// them.
func (f *File) Materialize() (*topology.Topology, *appgraph.App, core.Demand, error) {
	top, err := f.Topology.build()
	if err != nil {
		return nil, nil, nil, err
	}
	app, err := f.App.build(top)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := app.Validate(top); err != nil {
		return nil, nil, nil, fmt.Errorf("scenario: %w", err)
	}
	demand := core.Demand{}
	for class, per := range f.Demand {
		if app.Class(class) == nil {
			return nil, nil, nil, fmt.Errorf("scenario: demand for unknown class %q", class)
		}
		demand[class] = map[topology.ClusterID]float64{}
		for cl, rps := range per {
			if !top.Has(topology.ClusterID(cl)) {
				return nil, nil, nil, fmt.Errorf("scenario: demand in unknown cluster %q", cl)
			}
			demand[class][topology.ClusterID(cl)] = rps
		}
	}
	return top, app, demand, nil
}

func (t *TopologySpec) build() (*topology.Topology, error) {
	switch t.Preset {
	case "gcp":
		return topology.GCPTopology(), nil
	case "two-clusters":
		rtt := t.RTTMS
		if rtt <= 0 {
			rtt = 40
		}
		return topology.TwoClusters(time.Duration(rtt * float64(time.Millisecond))), nil
	case "":
	default:
		return nil, fmt.Errorf("scenario: unknown topology preset %q", t.Preset)
	}
	egress := t.DefaultEgressPerGB
	if egress == 0 { //slate:nolint floatcmp -- zero means "unset in the JSON": assigned literally
		egress = topology.DefaultEgressPerGB
	}
	b := topology.NewBuilder(egress)
	for _, c := range t.Clusters {
		b.AddCluster(topology.ClusterID(c.ID), c.Region)
	}
	for _, l := range t.Links {
		b.SetRTT(topology.ClusterID(l.A), topology.ClusterID(l.B),
			time.Duration(l.RTTMS*float64(time.Millisecond)))
		if l.EgressPerGB > 0 {
			b.SetEgressCost(topology.ClusterID(l.A), topology.ClusterID(l.B), l.EgressPerGB)
		}
	}
	return b.Build()
}

func (a *AppSpec) build(top *topology.Topology) (*appgraph.App, error) {
	if a.Preset != "" {
		return buildPreset(a.Preset, a.PresetOptions, top)
	}
	if len(a.Services) == 0 || len(a.Classes) == 0 {
		return nil, fmt.Errorf("scenario: explicit app needs services and classes")
	}
	app := &appgraph.App{Name: a.Name, Services: map[appgraph.ServiceID]*appgraph.Service{}}
	if app.Name == "" {
		app.Name = "scenario"
	}
	for _, s := range a.Services {
		svc := &appgraph.Service{
			ID:        appgraph.ServiceID(s.ID),
			Placement: map[topology.ClusterID]appgraph.ReplicaPool{},
		}
		for cl, p := range s.Placement {
			svc.Placement[topology.ClusterID(cl)] = appgraph.ReplicaPool{
				Replicas:    p.Replicas,
				Concurrency: p.Concurrency,
			}
		}
		app.Services[svc.ID] = svc
	}
	for _, c := range a.Classes {
		root := c.Root.toNode()
		app.Classes = append(app.Classes, &appgraph.Class{Name: c.Name, Root: root})
	}
	return app, nil
}

func (c *CallSpec) toNode() *appgraph.CallNode {
	count := c.Count
	if count == 0 {
		count = 1
	}
	dist := appgraph.DistExponential
	if c.Deterministic {
		dist = appgraph.DistDeterministic
	}
	n := &appgraph.CallNode{
		Service: appgraph.ServiceID(c.Service),
		Method:  c.Method,
		Path:    c.Path,
		Count:   count,
		Work: appgraph.Work{
			MeanServiceTime: time.Duration(c.ServiceTimeMS * float64(time.Millisecond)),
			Dist:            dist,
			RequestBytes:    c.RequestBytes,
			ResponseBytes:   c.ResponseBytes,
		},
		Parallel: c.Parallel,
	}
	for i := range c.Children {
		n.Children = append(n.Children, c.Children[i].toNode())
	}
	return n
}

func buildPreset(name string, opts map[string]any, top *topology.Topology) (*appgraph.App, error) {
	num := func(key string, def float64) float64 {
		if v, ok := opts[key]; ok {
			if f, ok := v.(float64); ok {
				return f
			}
		}
		return def
	}
	clusters := top.ClusterIDs()
	if v, ok := opts["clusters"]; ok {
		if list, ok := v.([]any); ok {
			clusters = nil
			for _, e := range list {
				if s, ok := e.(string); ok {
					clusters = append(clusters, topology.ClusterID(s))
				}
			}
		}
	}
	pool := appgraph.ReplicaPool{
		Replicas:    int(num("replicas", 2)),
		Concurrency: int(num("concurrency", 4)),
	}
	switch name {
	case "linear-chain":
		return appgraph.LinearChain(appgraph.ChainOptions{
			Services:        int(num("services", 3)),
			MeanServiceTime: time.Duration(num("mean_service_time_ms", 10) * float64(time.Millisecond)),
			Pool:            pool,
			Clusters:        clusters,
		}), nil
	case "anomaly-detection":
		var dbClusters []topology.ClusterID
		if v, ok := opts["db_clusters"]; ok {
			if list, ok := v.([]any); ok {
				for _, e := range list {
					if s, ok := e.(string); ok {
						dbClusters = append(dbClusters, topology.ClusterID(s))
					}
				}
			}
		}
		return appgraph.AnomalyDetection(appgraph.AnomalyOptions{
			Clusters:      clusters,
			DBClusters:    dbClusters,
			MetricsBytes:  int64(num("metrics_bytes", 0)),
			ResponseRatio: int64(num("response_ratio", 0)),
			Pool:          pool,
		}), nil
	case "two-class":
		return appgraph.TwoClassApp(appgraph.TwoClassOptions{
			Clusters:  clusters,
			LightTime: time.Duration(num("light_ms", 2) * float64(time.Millisecond)),
			HeavyTime: time.Duration(num("heavy_ms", 20) * float64(time.Millisecond)),
			Pool:      pool,
		}), nil
	case "fanout":
		return appgraph.FanoutApp(appgraph.FanoutOptions{
			Clusters: clusters,
			Width:    int(num("width", 3)),
			Pool:     pool,
		}), nil
	default:
		return nil, fmt.Errorf("scenario: unknown app preset %q", name)
	}
}
