// Planet-scale scenario generation: Generate materializes a synthetic
// deployment in the regime the paper targets — hundreds of clusters,
// ~1000 services, heavy-tailed service times, partial replication with
// locality-biased routing, and TraDE-style dynamics (pod churn, retry
// storms, hotspot migration) — sized far beyond the hand-written
// presets, for exercising the parallel simulator and the optimizer at
// scale.
//
// Everything is a pure function of GenSpec.Seed: every random choice is
// drawn from a stream derived by *name* (sim.RNG.DeriveNamed), never
// from shared stream state or map iteration order, so the same spec
// generates bit-identical scenarios on every run, platform, and
// GOMAXPROCS. The golden-fixture test pins a 100-cluster digest.
package scenario

import (
	"fmt"
	"math"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/simrun"
	"github.com/servicelayernetworking/slate/internal/topology"
	"github.com/servicelayernetworking/slate/internal/workload"
)

// GenSpec parameterizes the generator. The zero value of every field
// has a sensible default (see withDefaults); a zero spec generates a
// small smoke-scale scenario.
type GenSpec struct {
	Seed int64

	// Topology: Clusters spread round-robin over Regions. Intra-region
	// links get IntraRTT, inter-region links InterRTT, both jittered
	// ±RTTJitter (fraction).
	Clusters  int
	Regions   int
	IntraRTT  time.Duration
	InterRTT  time.Duration
	RTTJitter float64

	// Application: Services microservices partitioned across Classes
	// call trees (every service appears in exactly one class, so each
	// tree is trivially acyclic), plus one shared "ingress" frontend
	// placed everywhere. Trees are shaped by FanoutMean/MaxFanout.
	Services   int
	Classes    int
	FanoutMean float64
	MaxFanout  int

	// Work: per-call mean service time is log-uniform in
	// [MeanServiceTime/3, MeanServiceTime*3]; TailAlpha > 0 selects
	// heavy-tailed (Lomax) service times with that shape, 0 exponential.
	MeanServiceTime time.Duration
	TailAlpha       float64

	// Placement: each service runs in Spread clusters — its home plus
	// the nearest Spread-1 — with Replicas×Concurrency servers each.
	Spread      int
	Replicas    int
	Concurrency int

	// Load: TotalRPS split across classes by a heavy-tailed weight
	// (popularity skew); each class arrives at ArrivalSpread clusters
	// near its services' homes.
	TotalRPS      float64
	ArrivalSpread int

	// Locality table: clusters hosting a service keep 1-RemoteFraction
	// of its calls local and spill RemoteFraction to the two nearest
	// other placements; clusters without a local replica split between
	// the two nearest placements.
	RemoteFraction float64

	// Dynamics. ChurnEvents scheduled pool resizes (pod churn) land
	// uniformly in (Warmup, Duration). HotspotClasses get a migrating
	// hotspot: their load concentrates HotspotBoost× on one arrival
	// cluster at a time, rotating each phase. StormClasses get retry
	// amplification (leaf Count 2) plus a 3× mid-run burst.
	ChurnEvents    int
	HotspotClasses int
	HotspotBoost   float64
	StormClasses   int

	Duration time.Duration
	Warmup   time.Duration
}

func (s GenSpec) withDefaults() GenSpec {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&s.Clusters, 8)
	def(&s.Regions, 4)
	if s.Regions > s.Clusters {
		s.Regions = s.Clusters
	}
	if s.IntraRTT <= 0 {
		s.IntraRTT = 8 * time.Millisecond
	}
	if s.InterRTT <= 0 {
		s.InterRTT = 80 * time.Millisecond
	}
	if s.RTTJitter <= 0 {
		s.RTTJitter = 0.25
	}
	def(&s.Services, 40)
	def(&s.Classes, 8)
	if s.Classes > s.Services {
		s.Classes = s.Services
	}
	if s.FanoutMean <= 0 {
		s.FanoutMean = 1.8
	}
	def(&s.MaxFanout, 4)
	if s.MeanServiceTime <= 0 {
		s.MeanServiceTime = 3 * time.Millisecond
	}
	def(&s.Spread, 3)
	if s.Spread > s.Clusters {
		s.Spread = s.Clusters
	}
	def(&s.Replicas, 2)
	def(&s.Concurrency, 8)
	if s.TotalRPS <= 0 {
		s.TotalRPS = 2000
	}
	def(&s.ArrivalSpread, 2)
	if s.ArrivalSpread > s.Clusters {
		s.ArrivalSpread = s.Clusters
	}
	if s.RemoteFraction < 0 || s.RemoteFraction >= 1 {
		s.RemoteFraction = 0.1
	}
	if s.HotspotBoost <= 1 {
		s.HotspotBoost = 3
	}
	if s.Duration <= 0 {
		s.Duration = 20 * time.Second
	}
	if s.Warmup <= 0 || s.Warmup >= s.Duration {
		s.Warmup = s.Duration / 10
	}
	return s
}

// Generated is a materialized scenario: everything simrun needs, plus
// the static locality table to drive it with.
type Generated struct {
	Spec     GenSpec // the spec after defaulting
	Top      *topology.Topology
	App      *appgraph.App
	Workload []workload.Spec
	Table    *routing.Table
	Dynamics []simrun.PoolEvent
}

// Scenario assembles a simrun.Scenario from the generated parts.
func (g *Generated) Scenario(name string) simrun.Scenario {
	return simrun.Scenario{
		Name:     name,
		Top:      g.Top,
		App:      g.App,
		Workload: g.Workload,
		Duration: g.Spec.Duration,
		Warmup:   g.Spec.Warmup,
		Seed:     g.Spec.Seed,
		Dynamics: g.Dynamics,
	}
}

// Policy returns the static locality policy for the generated table.
func (g *Generated) Policy() simrun.Policy {
	return simrun.Static("locality", g.Table)
}

// IngressService is the shared frontend every generated class roots at
// (appgraph.Validate requires one frontend service).
const IngressService appgraph.ServiceID = "ingress"

// Gen100Spec is the planet-scale reference spec used by the golden
// fixture, the parallel-DES experiment, and the 1M-RPS benchmark: 100
// clusters across 10 regions, 1000 services, 125 traffic classes, 1M
// aggregate RPS, heavy-tailed service times, churn, hotspots, and retry
// storms all switched on.
func Gen100Spec() GenSpec {
	return GenSpec{
		Seed:            42,
		Clusters:        100,
		Regions:         10,
		Services:        1000,
		Classes:         125,
		FanoutMean:      2,
		MaxFanout:       4,
		MeanServiceTime: 2 * time.Millisecond,
		TailAlpha:       1.8,
		Spread:          3,
		Replicas:        4,
		Concurrency:     16,
		TotalRPS:        1_000_000,
		ArrivalSpread:   2,
		RemoteFraction:  0.12,
		ChurnEvents:     60,
		HotspotClasses:  10,
		HotspotBoost:    3,
		StormClasses:    10,
		Duration:        20 * time.Second,
		Warmup:          2 * time.Second,
	}
}

// Generate materializes spec. The result is deterministic in the spec.
func Generate(spec GenSpec) (*Generated, error) {
	s := spec.withDefaults()
	root := sim.NewRNG(s.Seed)

	// --- Topology ---------------------------------------------------
	ids := make([]topology.ClusterID, s.Clusters)
	region := make([]int, s.Clusters)
	b := topology.NewBuilder(topology.DefaultEgressPerGB)
	for i := range ids {
		ids[i] = topology.ClusterID(fmt.Sprintf("c%03d", i))
		region[i] = i % s.Regions
		b.AddCluster(ids[i], fmt.Sprintf("r%d", region[i]))
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			base := s.InterRTT
			if region[i] == region[j] {
				base = s.IntraRTT
			}
			jit := root.DeriveNamed(fmt.Sprintf("rtt/%s/%s", ids[i], ids[j]))
			f := 1 + s.RTTJitter*(2*jit.Float64()-1)
			b.SetRTT(ids[i], ids[j], time.Duration(f*float64(base)))
		}
	}
	top, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("scenario: generate topology: %w", err)
	}
	nearest := make(map[topology.ClusterID][]topology.ClusterID, len(ids))
	for _, c := range ids {
		nearest[c] = top.Nearest(c)
	}

	// --- Services and placement -------------------------------------
	app := &appgraph.App{
		Name:     fmt.Sprintf("gen-%dc-%ds", s.Clusters, s.Services),
		Services: map[appgraph.ServiceID]*appgraph.Service{},
	}
	app.Services[IngressService] = &appgraph.Service{
		ID:        IngressService,
		Placement: appgraph.Uniform(appgraph.ReplicaPool{Replicas: 2, Concurrency: 64}, ids...),
	}
	svcIDs := make([]appgraph.ServiceID, s.Services)
	home := make(map[appgraph.ServiceID]topology.ClusterID, s.Services)
	for i := range svcIDs {
		sid := appgraph.ServiceID(fmt.Sprintf("svc%04d", i))
		svcIDs[i] = sid
		h := ids[root.DeriveNamed("home/"+string(sid)).Intn(len(ids))]
		home[sid] = h
		placement := map[topology.ClusterID]appgraph.ReplicaPool{
			h: {Replicas: s.Replicas, Concurrency: s.Concurrency},
		}
		for _, c := range nearest[h] {
			if len(placement) >= s.Spread {
				break
			}
			placement[c] = appgraph.ReplicaPool{Replicas: s.Replicas, Concurrency: s.Concurrency}
		}
		app.Services[sid] = &appgraph.Service{ID: sid, Placement: placement}
	}

	// --- Classes: partition services into per-class call trees -------
	// Service i belongs to class i % Classes, so every service is used
	// exactly once and every tree is acyclic by construction.
	perClass := make([][]appgraph.ServiceID, s.Classes)
	for i, sid := range svcIDs {
		perClass[i%s.Classes] = append(perClass[i%s.Classes], sid)
	}
	for ci, members := range perClass {
		name := fmt.Sprintf("cls%03d", ci)
		stream := root.DeriveNamed("class/" + name)
		stream.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		storm := ci >= s.Classes-s.StormClasses
		rootNode := &appgraph.CallNode{
			Service: IngressService,
			Method:  "GET", Path: "/" + name, Count: 1,
			Work:     appgraph.Work{MeanServiceTime: 100 * time.Microsecond, Dist: appgraph.DistExponential},
			Parallel: true,
		}
		// Breadth-first tree shaping: each open node adopts 1..MaxFanout
		// children (mean FanoutMean) until the class's services run out.
		open := []*appgraph.CallNode{rootNode}
		next := 0
		for len(open) > 0 && next < len(members) {
			n := open[0]
			open = open[1:]
			fan := 1 + stream.Intn(2*int(s.FanoutMean+0.5))
			if fan > s.MaxFanout {
				fan = s.MaxFanout
			}
			for f := 0; f < fan && next < len(members); f++ {
				sid := members[next]
				next++
				mean := float64(s.MeanServiceTime) * (1.0 / 3 * math.Pow(9, stream.Float64()))
				dist, alpha := appgraph.DistExponential, 0.0
				if s.TailAlpha > 1 {
					dist, alpha = appgraph.DistPareto, s.TailAlpha
				}
				count := 1
				if storm && stream.Float64() < 0.5 {
					count = 2 // retry amplification on this edge
				}
				child := &appgraph.CallNode{
					Service: sid,
					Method:  "GET", Path: "/" + string(sid), Count: count,
					Work: appgraph.Work{
						MeanServiceTime: time.Duration(mean),
						Dist:            dist,
						TailAlpha:       alpha,
						RequestBytes:    int64(200 + stream.Intn(2000)),
						ResponseBytes:   int64(500 + stream.Intn(20000)),
					},
					Parallel: stream.Float64() < 0.5,
				}
				n.Children = append(n.Children, child)
				open = append(open, child)
			}
		}
		app.Classes = append(app.Classes, &appgraph.Class{Name: name, Root: rootNode})
	}

	// --- Workload: heavy-tailed popularity, locality, dynamics -------
	weights := make([]float64, s.Classes)
	sum := 0.0
	for ci := range weights {
		w := 0.1 + root.DeriveNamed(fmt.Sprintf("pop/cls%03d", ci)).Pareto(1, 1.5)
		weights[ci] = w
		sum += w
	}
	var specs []workload.Spec
	for ci, cl := range app.Classes {
		rate := s.TotalRPS * weights[ci] / sum
		// Arrivals land near the class's first service home.
		anchor := home[perClass[ci][0]]
		arrivals := []topology.ClusterID{anchor}
		for _, c := range nearest[anchor] {
			if len(arrivals) >= s.ArrivalSpread {
				break
			}
			arrivals = append(arrivals, c)
		}
		hotspot := ci < s.HotspotClasses
		storm := ci >= s.Classes-s.StormClasses
		for ai, c := range arrivals {
			share := rate / float64(len(arrivals))
			var phases []workload.Phase
			switch {
			case hotspot && len(arrivals) > 1:
				// The hotspot rotates across arrival clusters: phase p
				// concentrates HotspotBoost× of the share on arrival
				// p % len(arrivals), the rest cools to compensate so the
				// class total stays ~rate.
				nPhases := len(arrivals)
				phaseDur := s.Duration / time.Duration(nPhases)
				boost := s.HotspotBoost
				if max := float64(len(arrivals)); boost > max {
					boost = max // conserve the class total: cool floors at 0
				}
				cool := share * (float64(len(arrivals)) - boost) / float64(len(arrivals)-1)
				for p := 0; p < nPhases; p++ {
					rps := cool
					if p%len(arrivals) == ai {
						rps = share * boost
					}
					d := phaseDur
					if p == nPhases-1 {
						d = 0 // open-ended final phase
					}
					phases = append(phases, workload.Phase{RPS: rps, Duration: d})
				}
			case storm:
				// Baseline, then a 3× retry-storm burst for 10% of the
				// run starting mid-way, then recovery.
				phases = []workload.Phase{
					{RPS: share, Duration: s.Duration / 2},
					{RPS: 3 * share, Duration: s.Duration / 10},
					{RPS: share},
				}
			default:
				phases = []workload.Phase{{RPS: share}}
			}
			specs = append(specs, workload.Spec{
				Class: cl.Name, Cluster: c, Process: workload.Poisson, Phases: phases,
			})
		}
	}

	// --- Capacity sizing ---------------------------------------------
	// Spec.Replicas is a floor: pools are sized so each service runs at
	// ~55% utilization under the base offered load. Expected busy
	// servers per service = Σ_class rate × call multiplier × mean
	// service time, split evenly across its placements. Without this,
	// large TotalRPS (the 1M-RPS reference spec) would drive fixed-size
	// pools far past saturation and the simulation would never drain.
	const targetUtil = 0.55
	busy := map[appgraph.ServiceID]float64{} // expected busy servers
	for ci, cl := range app.Classes {
		rate := s.TotalRPS * weights[ci] / sum
		var walk func(n *appgraph.CallNode, mult float64)
		walk = func(n *appgraph.CallNode, mult float64) {
			m := mult * float64(n.Count)
			busy[n.Service] += rate * m * n.Work.MeanServiceTime.Seconds()
			for _, ch := range n.Children {
				walk(ch, m)
			}
		}
		walk(cl.Root, 1)
	}
	sized := map[appgraph.ServiceID]int{}
	for _, sid := range svcIDs {
		svc := app.Services[sid]
		perPool := busy[sid] / float64(len(svc.Placement)) / targetUtil
		reps := int(math.Ceil(perPool / float64(s.Concurrency)))
		if reps < s.Replicas {
			reps = s.Replicas
		}
		sized[sid] = reps
		for c := range svc.Placement {
			svc.Placement[c] = appgraph.ReplicaPool{Replicas: reps, Concurrency: s.Concurrency}
		}
	}

	// --- Static locality table with RemoteFraction spill -------------
	rules := map[routing.Key]routing.Distribution{}
	for _, sid := range svcIDs {
		svc := app.Services[sid]
		for _, c := range ids {
			var placed []topology.ClusterID
			if svc.PlacedIn(c) {
				placed = append(placed, c)
			}
			for _, n := range nearest[c] {
				if len(placed) >= 3 {
					break
				}
				if svc.PlacedIn(n) {
					placed = append(placed, n)
				}
			}
			w := map[topology.ClusterID]float64{}
			if placed[0] == c {
				w[c] = 1 - s.RemoteFraction
				for _, p := range placed[1:] {
					w[p] = s.RemoteFraction / float64(len(placed)-1)
				}
				if len(placed) == 1 {
					w[c] = 1
				}
			} else {
				for _, p := range placed {
					w[p] = 1 / float64(len(placed))
				}
			}
			d, err := routing.NewDistribution(w)
			if err != nil {
				return nil, fmt.Errorf("scenario: generate rule for %s@%s: %w", sid, c, err)
			}
			rules[routing.Key{Service: string(sid), Class: routing.AnyClass, Cluster: c}] = d
		}
	}

	// --- Pod churn --------------------------------------------------
	var dynamics []simrun.PoolEvent
	for e := 0; e < s.ChurnEvents; e++ {
		stream := root.DeriveNamed(fmt.Sprintf("churn/%d", e))
		sid := svcIDs[stream.Intn(len(svcIDs))]
		// Resize a deterministic placement of that service: its home.
		// The new size is 0.5–1.5× the capacity-sized pool, so churn
		// perturbs queueing without collapsing a hot service entirely.
		at := s.Warmup + time.Duration(stream.Float64()*float64(s.Duration-s.Warmup))
		base := sized[sid]
		replicas := base/2 + stream.Intn(base+1)
		if replicas < 1 {
			replicas = 1
		}
		dynamics = append(dynamics, simrun.PoolEvent{
			At: at, Service: sid, Cluster: home[sid], Replicas: replicas,
		})
	}

	g := &Generated{
		Spec:     s,
		Top:      top,
		App:      app,
		Workload: specs,
		Table:    routing.NewTable(1, rules),
		Dynamics: dynamics,
	}
	if err := app.Validate(top); err != nil {
		return nil, fmt.Errorf("scenario: generated app invalid: %w", err)
	}
	scn := g.Scenario("gen-validate")
	if err := scn.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated scenario invalid: %w", err)
	}
	return g, nil
}
