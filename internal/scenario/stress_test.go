package scenario

import (
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/topology"
)

func TestStressScenariosValidate(t *testing.T) {
	for _, scn := range StressScenarios(42, 0.25) {
		if err := scn.Validate(); err != nil {
			t.Errorf("%s: %v", scn.Name, err)
		}
		if scn.ControlPeriod != StressControlPeriod {
			t.Errorf("%s: control period %v, want %v", scn.Name, scn.ControlPeriod, StressControlPeriod)
		}
	}
}

func TestFlashCrowdShape(t *testing.T) {
	scn := FlashCrowd(42)
	var west int
	for _, spec := range scn.Workload {
		if spec.Cluster != topology.West {
			continue
		}
		west++
		if got := spec.RateAt(10 * time.Second); !almostEqual(got, 700) {
			t.Errorf("base rate %v, want 700", got)
		}
		if got := spec.RateAt(23 * time.Second); !almostEqual(got, 950) {
			t.Errorf("spike rate %v, want 950", got)
		}
		if got := spec.RateAt(30 * time.Second); !almostEqual(got, 700) {
			t.Errorf("recovered rate %v, want 700", got)
		}
		// The spike edge lands exactly on a control boundary.
		if rem := (20 * time.Second) % StressControlPeriod; rem != 0 {
			t.Errorf("spike start misaligned with control period by %v", rem)
		}
	}
	if west != 1 {
		t.Fatalf("flash crowd has %d west streams, want 1", west)
	}
}

func TestAdversarialWalkDeterministicAndBoxed(t *testing.T) {
	const margin = 0.25
	a := AdversarialWalk(7, margin)
	b := AdversarialWalk(7, margin)
	var aw, bw []float64
	for t := time.Duration(0); t < a.Duration; t += StressControlPeriod {
		aw = append(aw, a.Workload[0].RateAt(t))
		bw = append(bw, b.Workload[0].RateAt(t))
	}
	amp := WalkAmplitude(margin)
	lo, hi := 680*(1-amp), 680*(1+amp)
	var flips int
	for i := range aw {
		if aw[i] != bw[i] { //slate:nolint floatcmp -- same seed must reproduce bit-identical phases
			t.Fatalf("step %d: %v vs %v for the same seed", i, aw[i], bw[i])
		}
		if !almostEqual(aw[i], lo) && !almostEqual(aw[i], hi) {
			t.Errorf("step %d: rate %v is not a box corner (%v or %v)", i, aw[i], lo, hi)
		}
		if i > 0 && aw[i] != aw[i-1] { //slate:nolint floatcmp -- corner values are assigned, not computed
			flips++
		}
	}
	if flips < 5 {
		t.Errorf("walk flipped only %d times over %d steps; not adversarial", flips, len(aw))
	}
	// Different seeds produce different walks.
	c := AdversarialWalk(8, margin)
	same := true
	for t := time.Duration(0); t < a.Duration; t += StressControlPeriod {
		if a.Workload[0].RateAt(t) != c.Workload[0].RateAt(t) { //slate:nolint floatcmp -- corner values compare exactly
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical walks")
	}
}

func TestDiurnalSwingConservesTotal(t *testing.T) {
	scn := DiurnalSwing(42)
	if len(scn.Workload) != 2 {
		t.Fatalf("diurnal has %d streams, want 2", len(scn.Workload))
	}
	var peak float64
	for ts := time.Duration(0); ts < scn.Duration; ts += StressControlPeriod {
		w := scn.Workload[0].RateAt(ts)
		e := scn.Workload[1].RateAt(ts)
		if !almostEqual(w+e, 1000) {
			t.Fatalf("t=%v: total %v, want 1000 (antiphase)", ts, w+e)
		}
		if w > peak {
			peak = w
		}
	}
	if peak < 750 {
		t.Errorf("west peak %v; swing amplitude looks wrong", peak)
	}
	// The season length divides the cycle exactly: 24s / 2s = 12 steps.
	if got := (24 * time.Second) / StressControlPeriod; got != 12 {
		t.Errorf("season steps = %d, want 12", got)
	}
}

func TestCorrelatedSurgePairs(t *testing.T) {
	scn := CorrelatedSurge(42)
	surging := map[topology.ClusterID]bool{}
	for _, spec := range scn.Workload {
		base := spec.RateAt(10 * time.Second)
		mid := spec.RateAt(23 * time.Second)
		if mid > base*1.4 {
			surging[spec.Cluster] = true
		}
	}
	if !surging[topology.OR] || !surging[topology.IOW] || len(surging) != 2 {
		t.Errorf("surging clusters = %v, want exactly {or, iow}", surging)
	}
}
