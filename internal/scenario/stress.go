// Stress scenario generators for the robust/predictive evaluation: the
// demand-side counterpart of Generate's planet-scale dynamics. Each
// constructor returns a small, fully deterministic simrun.Scenario whose
// workload violates the "demand is what I measured last window"
// assumption in a characteristic way — a flash crowd between control
// ticks, a diurnal swing a forecaster can learn, an adversarial random
// walk bouncing across the uncertainty box, and a correlated
// multi-cluster surge. The regret experiment runs reactive, robust,
// predictive and clairvoyant controllers over these and reports
// worst-case and mean latency regret (see internal/experiments).
package scenario

import (
	"fmt"
	"math"
	"time"

	"github.com/servicelayernetworking/slate/internal/appgraph"
	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/simrun"
	"github.com/servicelayernetworking/slate/internal/topology"
	"github.com/servicelayernetworking/slate/internal/workload"
)

// StressControlPeriod is the control/telemetry window every stress
// scenario uses; walk and diurnal schedules step on its boundaries so a
// demand change always lands exactly between two controller ticks (the
// worst case for a reactive controller).
const StressControlPeriod = 2 * time.Second

// stressChainApp is the paper's 3-service chain sized so one cluster's
// pool saturates at 800 standard RPS (760 at the utilization cap) —
// the stress baselines sit deliberately close to that knee.
func stressChainApp(clusters ...topology.ClusterID) *appgraph.App {
	return appgraph.LinearChain(appgraph.ChainOptions{
		Services:        3,
		MeanServiceTime: 10 * time.Millisecond,
		Pool:            appgraph.ReplicaPool{Replicas: 2, Concurrency: 4},
		Clusters:        clusters,
	})
}

// FlashCrowd is the between-ticks surge: west runs at 700 RPS — close
// enough to the 760-RPS knee that a reactive controller keeps most of
// it local — then spikes to 950 RPS at t=20s for 6 s. The spike begins
// exactly on a control boundary, so a reactive controller serves its
// first spiked window with a table built for 700.
func FlashCrowd(seed int64) simrun.Scenario {
	top := topology.TwoClusters(40 * time.Millisecond)
	return simrun.Scenario{
		Name: "flash-crowd",
		Top:  top,
		App:  stressChainApp(topology.West, topology.East),
		Workload: []workload.Spec{
			workload.Burst("default", topology.West, 700, 950, 20*time.Second, 6*time.Second),
			workload.Steady("default", topology.East, 100),
		},
		Duration:      40 * time.Second,
		Warmup:        4 * time.Second,
		ControlPeriod: StressControlPeriod,
		Seed:          seed,
	}
}

// DiurnalSwing oscillates west demand sinusoidally around 500 RPS with
// ±300 amplitude and a 24 s period, sampled every control window — a
// 12-step season a Holt-Winters forecaster (SeasonLength 12) can learn
// within two cycles. East mirrors the swing in antiphase, so total
// system load is constant and only the *placement* must track the wave.
func DiurnalSwing(seed int64) simrun.Scenario {
	const (
		mean   = 500.0
		amp    = 300.0
		period = 24 * time.Second
		dur    = 96 * time.Second // four full cycles
	)
	var west, east []workload.Phase
	for t := time.Duration(0); t < dur; t += StressControlPeriod {
		phase := 2 * math.Pi * float64(t) / float64(period)
		west = append(west, workload.Phase{RPS: mean + amp*math.Sin(phase), Duration: StressControlPeriod})
		east = append(east, workload.Phase{RPS: mean - amp*math.Sin(phase), Duration: StressControlPeriod})
	}
	west[len(west)-1].Duration = 0 // open-ended tails
	east[len(east)-1].Duration = 0
	top := topology.TwoClusters(40 * time.Millisecond)
	return simrun.Scenario{
		Name: "diurnal",
		Top:  top,
		App:  stressChainApp(topology.West, topology.East),
		Workload: []workload.Spec{
			{Class: "default", Cluster: topology.West, Process: workload.Poisson, Phases: west},
			{Class: "default", Cluster: topology.East, Process: workload.Poisson, Phases: east},
		},
		Duration: dur,
		// Two full cycles of warmup: a Holt-Winters forecaster with
		// SeasonLength 12 needs one season to initialize and one to
		// settle, so post-warmup windows score the *trained* predictor.
		Warmup:        48 * time.Second,
		ControlPeriod: StressControlPeriod,
		Seed:          seed,
	}
}

// WalkAmplitude returns the largest relative swing a margin-m robust
// controller provably absorbs against an adversarial walk: the
// controller's demand estimate is a convex combination of past rates,
// so it can sit at the low corner base·(1−a) while the next window
// jumps to base·(1+a); coverage needs (1−a)(1+m) ≥ 1+a, i.e.
// a ≤ m/(2+m) (≈11.1% for the 25% margin the regret experiment uses).
func WalkAmplitude(margin float64) float64 {
	return margin / (2 + margin)
}

// AdversarialWalk bounces west demand between the corners of the
// widest band a margin-wide uncertainty set covers (see WalkAmplitude):
// every control window a seeded coin flip sends the rate to
// base·(1±a). A reactive controller is always one window behind the
// flip; a robust one pads every estimate enough to cover the opposite
// corner. The walk is a pure function of the seed
// (sim.RNG.DeriveNamed per step), so paired runs under different
// policies face the identical adversary.
func AdversarialWalk(seed int64, margin float64) simrun.Scenario {
	// The base puts the walk's high corner (base·(1+a) ≈ 755 RPS for the
	// 25% margin) just under the 760-RPS utilization cap: a stale table
	// built for the low corner meets it at ~94% local utilization, deep
	// in the convex tail of the queueing curve.
	const (
		base = 680.0
		dur  = 60 * time.Second
	)
	if margin <= 0 {
		margin = 0.25
	}
	amp := WalkAmplitude(margin)
	root := sim.NewRNG(seed)
	var west []workload.Phase
	for t := time.Duration(0); t < dur; t += StressControlPeriod {
		step := root.DeriveNamed(fmt.Sprintf("walk/west/%d", int(t/StressControlPeriod)))
		rps := base * (1 - amp)
		if step.Float64() < 0.5 {
			rps = base * (1 + amp)
		}
		west = append(west, workload.Phase{RPS: rps, Duration: StressControlPeriod})
	}
	west[len(west)-1].Duration = 0
	top := topology.TwoClusters(40 * time.Millisecond)
	return simrun.Scenario{
		Name: "adversarial-walk",
		Top:  top,
		App:  stressChainApp(topology.West, topology.East),
		Workload: []workload.Spec{
			{Class: "default", Cluster: topology.West, Process: workload.Poisson, Phases: west},
			workload.Steady("default", topology.East, 100),
		},
		Duration:      dur,
		Warmup:        4 * time.Second,
		ControlPeriod: StressControlPeriod,
		Seed:          seed,
	}
}

// CorrelatedSurge lifts demand in two GCP clusters (Oregon and Iowa)
// simultaneously from 600 to 900 RPS for 6 s starting at t=20s — the
// correlated regional event a per-pool budget of Γ=1 underestimates
// but a box (or Γ=2) covers. The 600-RPS base sits under the local
// knee, so a reactive table keeps it local and has no headroom for the
// surge; the 25% margin provisions for 750 and pre-spills. Utah and
// South Carolina idle at 100 RPS and are the natural spill targets.
func CorrelatedSurge(seed int64) simrun.Scenario {
	top := topology.GCPTopology()
	clusters := top.ClusterIDs()
	return simrun.Scenario{
		Name: "correlated-surge",
		Top:  top,
		App:  stressChainApp(clusters...),
		Workload: []workload.Spec{
			workload.Burst("default", topology.OR, 600, 900, 20*time.Second, 6*time.Second),
			workload.Burst("default", topology.IOW, 600, 900, 20*time.Second, 6*time.Second),
			workload.Steady("default", topology.UT, 100),
			workload.Steady("default", topology.SC, 100),
		},
		Duration:      40 * time.Second,
		Warmup:        4 * time.Second,
		ControlPeriod: StressControlPeriod,
		Seed:          seed,
	}
}

// StressScenarios returns the full stress suite keyed by name, all
// driven by the one seed (margin parameterizes the walk's box corners).
func StressScenarios(seed int64, margin float64) []simrun.Scenario {
	return []simrun.Scenario{
		FlashCrowd(seed),
		AdversarialWalk(seed, margin),
		DiurnalSwing(seed),
		CorrelatedSurge(seed),
	}
}
