package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/servicelayernetworking/slate/internal/topology"
)

func write(t *testing.T, doc string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadPresetScenario(t *testing.T) {
	p := write(t, `{
	  "topology": {"preset": "two-clusters", "rtt_ms": 25},
	  "app": {"preset": "linear-chain", "preset_options": {"services": 2, "mean_service_time_ms": 5}},
	  "demand": {"default": {"west": 500, "east": 100}}
	}`)
	top, app, demand, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if top.RTT(topology.West, topology.East).Milliseconds() != 25 {
		t.Errorf("rtt = %v", top.RTT(topology.West, topology.East))
	}
	if len(app.Services) != 3 { // gateway + 2
		t.Errorf("services = %d", len(app.Services))
	}
	if !almostEqual(demand["default"][topology.West], 500) {
		t.Errorf("demand = %v", demand)
	}
}

func TestLoadGCPPreset(t *testing.T) {
	p := write(t, `{
	  "topology": {"preset": "gcp"},
	  "app": {"preset": "anomaly-detection", "preset_options": {
	    "clusters": ["or", "ut", "iow", "sc"], "db_clusters": ["sc"]}},
	  "demand": {"detect": {"or": 100}}
	}`)
	top, app, _, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumClusters() != 4 {
		t.Errorf("clusters = %d", top.NumClusters())
	}
	db := app.Service("db")
	if db.PlacedIn(topology.OR) || !db.PlacedIn(topology.SC) {
		t.Errorf("db placement wrong: %v", db.Placement)
	}
}

func TestLoadExplicitScenario(t *testing.T) {
	p := write(t, `{
	  "topology": {
	    "clusters": [{"id": "a"}, {"id": "b"}],
	    "links": [{"a": "a", "b": "b", "rtt_ms": 15, "egress_per_gb": 0.02}]
	  },
	  "app": {
	    "name": "custom",
	    "services": [
	      {"id": "fe", "placement": {"a": {"replicas": 1, "concurrency": 8}, "b": {"replicas": 1, "concurrency": 8}}},
	      {"id": "be", "placement": {"a": {"replicas": 2, "concurrency": 2}, "b": {"replicas": 2, "concurrency": 2}}}
	    ],
	    "classes": [{
	      "name": "main",
	      "root": {
	        "service": "fe", "method": "GET", "path": "/", "service_time_ms": 0.5,
	        "children": [{"service": "be", "method": "GET", "path": "/q",
	          "service_time_ms": 4, "deterministic": true, "count": 2,
	          "response_bytes": 2048}]
	      }
	    }]
	  },
	  "demand": {"main": {"a": 50}}
	}`)
	top, app, demand, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(top.EgressCostPerGB("a", "b"), 0.02) {
		t.Errorf("egress = %v", top.EgressCostPerGB("a", "b"))
	}
	cl := app.Class("main")
	be := cl.Root.Children[0]
	if be.Count != 2 || be.Work.ResponseBytes != 2048 {
		t.Errorf("child spec lost: %+v", be)
	}
	if be.Work.Dist.String() != "deterministic" {
		t.Errorf("dist = %v", be.Work.Dist)
	}
	if !almostEqual(demand["main"]["a"], 50) {
		t.Errorf("demand = %v", demand)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"bad json", `{`, "parse"},
		{"unknown topology preset", `{"topology":{"preset":"mars"},"app":{"preset":"linear-chain"}}`, "unknown topology preset"},
		{"unknown app preset", `{"topology":{"preset":"gcp"},"app":{"preset":"nope"}}`, "unknown app preset"},
		{"empty explicit app", `{"topology":{"preset":"gcp"},"app":{}}`, "needs services and classes"},
		{"demand unknown class", `{"topology":{"preset":"two-clusters"},"app":{"preset":"linear-chain"},"demand":{"ghost":{"west":1}}}`, "unknown class"},
		{"demand unknown cluster", `{"topology":{"preset":"two-clusters"},"app":{"preset":"linear-chain"},"demand":{"default":{"mars":1}}}`, "unknown cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := Load(write(t, tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, _, err := Load("/does/not/exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFileRoundTripThroughJSON(t *testing.T) {
	f := File{
		Topology: TopologySpec{Preset: "two-clusters", RTTMS: 30},
		App:      AppSpec{Preset: "two-class"},
		Demand:   map[string]map[string]float64{"L": {"west": 10}},
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var got File
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := got.Materialize(); err != nil {
		t.Fatal(err)
	}
}
