// Package queuemodel provides the load-to-latency models SLATE uses to
// predict service latency as a function of offered load (paper §3.3
// "Latency Modeling"): M/M/c queueing formulas, model fitting from
// telemetry samples, and the convex piecewise linearization that turns
// the nonlinear latency objective into a linear program.
package queuemodel

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Model predicts steady-state request latency at a replica pool as a
// function of offered load.
type Model interface {
	// Sojourn returns the expected time a request spends at the pool
	// (queueing wait plus service) when load is lambda requests/second.
	// Loads at or beyond capacity return +Inf.
	Sojourn(lambda float64) time.Duration
	// SojournSeconds is Sojourn in float seconds, without the
	// nanosecond truncation of time.Duration — the optimizer's
	// linearization needs the extra precision.
	SojournSeconds(lambda float64) float64
	// Capacity returns the saturation throughput in requests/second.
	Capacity() float64
}

// MMc is an M/M/c queue: Poisson arrivals, exponential service times,
// c parallel servers. SLATE models each (service, cluster) replica pool
// as one M/M/c queue whose c is replicas × per-replica concurrency.
type MMc struct {
	// Servers is the number of parallel servers (c ≥ 1).
	Servers int
	// Mu is the per-server service rate in requests/second (1 / mean
	// service time).
	Mu float64
}

// NewMMc builds an M/M/c model from a server count and a mean service
// time.
func NewMMc(servers int, meanServiceTime time.Duration) MMc {
	if servers < 1 {
		servers = 1
	}
	mu := math.Inf(1)
	if meanServiceTime > 0 {
		mu = 1 / meanServiceTime.Seconds()
	}
	return MMc{Servers: servers, Mu: mu}
}

// Capacity returns c·μ, the saturation throughput.
func (m MMc) Capacity() float64 { return float64(m.Servers) * m.Mu }

// Rho returns the server utilization λ/(c·μ).
func (m MMc) Rho(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	return lambda / m.Capacity()
}

// ErlangC returns the probability an arriving request must wait (all c
// servers busy), computed with the numerically stable iterative form of
// the Erlang C formula.
func (m MMc) ErlangC(lambda float64) float64 {
	c := m.Servers
	a := lambda / m.Mu // offered load in Erlangs
	if a <= 0 {
		return 0
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1
	}
	// Iteratively compute the Erlang B blocking probability, then
	// convert to Erlang C. B(0, a) = 1; B(k, a) = a·B(k-1)/(k + a·B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b))
}

// WaitSeconds returns the expected queueing delay (excluding service) in
// seconds: Wq = C(c, a) / (cμ − λ).
func (m MMc) WaitSeconds(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda >= m.Capacity() {
		return math.Inf(1)
	}
	return m.ErlangC(lambda) / (m.Capacity() - lambda)
}

// SojournSeconds returns the expected total time at the queue in
// seconds: W = Wq + 1/μ.
func (m MMc) SojournSeconds(lambda float64) float64 {
	w := m.WaitSeconds(lambda)
	if math.IsInf(w, 1) {
		return w
	}
	return w + 1/m.Mu
}

// Sojourn implements Model.
func (m MMc) Sojourn(lambda float64) time.Duration {
	return secondsToDuration(m.SojournSeconds(lambda))
}

// MD1 is an M/D/1 queue: Poisson arrivals, deterministic service time,
// one server. The paper's file-write microbenchmark services are closer
// to M/D/1; SLATE's controller still fits M/M/c, and the gap between
// the two is part of what the "resilience to misprediction" challenge
// (§5) is about.
type MD1 struct {
	// Mu is the service rate in requests/second.
	Mu float64
}

// NewMD1 builds an M/D/1 model from a fixed service time.
func NewMD1(serviceTime time.Duration) MD1 {
	mu := math.Inf(1)
	if serviceTime > 0 {
		mu = 1 / serviceTime.Seconds()
	}
	return MD1{Mu: mu}
}

// Capacity implements Model.
func (m MD1) Capacity() float64 { return m.Mu }

// SojournSeconds returns the Pollaczek–Khinchine sojourn time
// W = 1/μ + ρ/(2μ(1−ρ)).
func (m MD1) SojournSeconds(lambda float64) float64 {
	if lambda <= 0 {
		return 1 / m.Mu
	}
	rho := lambda / m.Mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1/m.Mu + rho/(2*m.Mu*(1-rho))
}

// Sojourn implements Model.
func (m MD1) Sojourn(lambda float64) time.Duration {
	return secondsToDuration(m.SojournSeconds(lambda))
}

func secondsToDuration(s float64) time.Duration {
	if math.IsInf(s, 1) || s > math.MaxInt64/2e9 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(s * float64(time.Second))
}

// Sample is one telemetry observation: measured mean latency at a
// measured offered load.
type Sample struct {
	Lambda  float64       // requests/second
	Latency time.Duration // observed mean sojourn time
}

// ErrInsufficientData is returned when fitting is attempted with too few
// or degenerate samples.
var ErrInsufficientData = errors.New("queuemodel: insufficient samples to fit model")

// FitMMc estimates the per-server service rate μ of an M/M/c model with
// a known server count from (load, latency) telemetry samples, by
// minimizing the sum of squared relative latency errors with a golden-
// section search. This is how SLATE learns latency profiles dynamically
// in production rather than profiling offline (§5).
func FitMMc(servers int, samples []Sample) (MMc, error) {
	if servers < 1 {
		return MMc{}, fmt.Errorf("queuemodel: servers must be >= 1, got %d", servers)
	}
	var clean []Sample
	var maxLambda float64
	for _, s := range samples {
		if s.Lambda < 0 || s.Latency <= 0 {
			continue
		}
		clean = append(clean, s)
		if s.Lambda > maxLambda {
			maxLambda = s.Lambda
		}
	}
	if len(clean) == 0 {
		return MMc{}, ErrInsufficientData
	}
	// μ must exceed maxLambda/c for every sample to be feasible. The
	// lightest-load sample bounds μ from above: W >= 1/μ always, so
	// μ >= 1/W_min... actually μ <= 1/min(W) can be violated by noise;
	// use a generous bracket instead.
	minLat := math.Inf(1)
	for _, s := range clean {
		if l := s.Latency.Seconds(); l < minLat {
			minLat = l
		}
	}
	lo := maxLambda/float64(servers) + 1e-9 // just feasible
	hi := 10 / minLat                       // far above any plausible service rate
	if hi <= lo {
		hi = lo * 10
	}
	obj := func(mu float64) float64 {
		m := MMc{Servers: servers, Mu: mu}
		var sse float64
		for _, s := range clean {
			pred := m.SojournSeconds(s.Lambda)
			obs := s.Latency.Seconds()
			if math.IsInf(pred, 1) {
				return math.Inf(1)
			}
			rel := (pred - obs) / obs
			sse += rel * rel
		}
		return sse
	}
	mu := goldenSection(obj, lo, hi, 1e-10)
	m := MMc{Servers: servers, Mu: mu}
	if math.IsInf(obj(mu), 1) || mu <= 0 {
		return MMc{}, ErrInsufficientData
	}
	return m, nil
}

// goldenSection minimizes a unimodal function on [lo, hi].
func goldenSection(f func(float64) float64, lo, hi, tol float64) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 200 && (b-a) > tol*(1+math.Abs(a)); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}
