package queuemodel

import "math"

// almostEqual compares floats with a small absolute+relative tolerance.
// Exact float equality is a latent bug once values flow through
// arithmetic (the floatcmp analyzer flags it); tests assert with this
// helper instead.
func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
