package queuemodel

import "fmt"

// Segment is one piece of a convex piecewise-linear approximation of the
// aggregate delay function D(λ) = λ·W(λ), where W is the model's sojourn
// time. D is convex and increasing on [0, capacity), so the secant
// slopes of consecutive segments are nondecreasing — which lets the LP
// use the standard incremental formulation: split the flow λ across
// segment variables 0 ≤ λᵢ ≤ Widthᵢ with per-unit cost Slopeᵢ; because
// slopes increase, an optimal LP solution always fills cheaper segments
// first and the approximation is exact at the breakpoints.
type Segment struct {
	// Width is the amount of load (req/s) the segment can carry.
	Width float64
	// Slope is the marginal delay cost in seconds of aggregate latency
	// per unit of load (second·(req/s)⁻¹ of D, i.e. seconds of
	// request-seconds per request).
	Slope float64
}

// DefaultBreakFracs are the default utilization breakpoints for
// linearization. They concentrate resolution near saturation, where the
// latency curve bends hardest.
var DefaultBreakFracs = []float64{0.25, 0.5, 0.7, 0.8, 0.9, 0.95}

// MaxUtilization is the default cap on modeled utilization. Flows beyond
// this point are infeasible in the optimizer rather than priced: queueing
// formulas diverge at ρ→1 and no sane routing plan should hold a pool
// there (DESIGN.md "capacity guard").
const MaxUtilization = 0.95

// Linearize builds the convex PWL approximation of D(λ) = λ·W(λ) for the
// model, with breakpoints at the given utilization fractions of
// capacity. Fractions must be strictly increasing in (0, 1); the last
// fraction is the utilization cap. If fracs is nil, DefaultBreakFracs is
// used.
func Linearize(m Model, fracs []float64) ([]Segment, error) {
	if fracs == nil {
		fracs = DefaultBreakFracs
	}
	cap := m.Capacity()
	if cap <= 0 {
		return nil, fmt.Errorf("queuemodel: model has non-positive capacity %v", cap)
	}
	prevFrac := 0.0
	prevD := 0.0
	segs := make([]Segment, 0, len(fracs))
	for i, f := range fracs {
		if f <= prevFrac || f >= 1 {
			return nil, fmt.Errorf("queuemodel: break fraction %v at index %d not strictly increasing in (0,1)", f, i)
		}
		lambda := f * cap
		d := lambda * m.SojournSeconds(lambda)
		width := (f - prevFrac) * cap
		slope := (d - prevD) / width
		segs = append(segs, Segment{Width: width, Slope: slope})
		prevFrac, prevD = f, d
	}
	return segs, nil
}

// TotalWidth returns the summed capacity of the segments — the maximum
// load the linearized pool may carry.
func TotalWidth(segs []Segment) float64 {
	var w float64
	for _, s := range segs {
		w += s.Width
	}
	return w
}

// EvalPWL returns the PWL delay D̃(λ) implied by the segments, filling
// segments in order. Loads beyond the total width return +Inf slope
// extension (the last slope extended), which callers should treat as
// "infeasible" — the optimizer never produces such loads because segment
// variables are capacity-bounded.
func EvalPWL(segs []Segment, lambda float64) float64 {
	var d float64
	remaining := lambda
	for _, s := range segs {
		take := remaining
		if take > s.Width {
			take = s.Width
		}
		d += take * s.Slope
		remaining -= take
		if remaining <= 0 {
			return d
		}
	}
	if remaining > 0 && len(segs) > 0 {
		d += remaining * segs[len(segs)-1].Slope
	}
	return d
}
