package queuemodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMM1MatchesClosedForm(t *testing.T) {
	// For c=1, ErlangC reduces to rho and the sojourn time to 1/(mu-lambda).
	m := NewMMc(1, 10*time.Millisecond) // mu = 100/s
	for _, lambda := range []float64{0, 10, 50, 90, 99} {
		want := 1.0 / (100 - lambda)
		got := m.SojournSeconds(lambda)
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("W(%v) = %v, want %v", lambda, got, want)
		}
	}
}

func TestPoolingReducesWaitProbability(t *testing.T) {
	// At equal utilization and equal total capacity, a pooled M/M/4 has a
	// lower probability of waiting than M/M/1 (statistical multiplexing).
	m1 := MMc{Servers: 1, Mu: 400}
	m4 := MMc{Servers: 4, Mu: 100}
	lambda := 300.0 // rho = 0.75 for both
	if c1, c4 := m1.ErlangC(lambda), m4.ErlangC(lambda); c4 >= c1 {
		t.Errorf("ErlangC: c=4 gives %v, want less than c=1's %v", c4, c1)
	}
}

func TestErlangCBounds(t *testing.T) {
	m := MMc{Servers: 8, Mu: 50}
	for _, lambda := range []float64{0, 1, 100, 200, 300, 390} {
		c := m.ErlangC(lambda)
		if c < 0 || c > 1 {
			t.Errorf("ErlangC(%v) = %v out of [0,1]", lambda, c)
		}
	}
	if !almostEqual(m.ErlangC(0), 0) {
		t.Error("ErlangC(0) != 0")
	}
	if !almostEqual(m.ErlangC(m.Capacity()), 1) {
		t.Error("ErlangC at capacity != 1")
	}
}

func TestSojournMonotoneInLoad(t *testing.T) {
	m := MMc{Servers: 8, Mu: 50}
	prev := 0.0
	for lambda := 0.0; lambda < m.Capacity(); lambda += 5 {
		w := m.SojournSeconds(lambda)
		if w < prev {
			t.Fatalf("sojourn decreased at lambda=%v: %v < %v", lambda, w, prev)
		}
		prev = w
	}
}

func TestSojournAtOrBeyondCapacity(t *testing.T) {
	m := MMc{Servers: 2, Mu: 100}
	if !math.IsInf(m.SojournSeconds(200), 1) {
		t.Error("sojourn at capacity should be +Inf")
	}
	if !math.IsInf(m.SojournSeconds(250), 1) {
		t.Error("sojourn beyond capacity should be +Inf")
	}
	if m.Sojourn(250) != time.Duration(math.MaxInt64) {
		t.Error("Sojourn duration beyond capacity should saturate at MaxInt64")
	}
}

func TestMD1HalfTheMM1Wait(t *testing.T) {
	// Classic result: M/D/1 queueing delay is half of M/M/1 at equal rho.
	md := NewMD1(10 * time.Millisecond)
	mm := NewMMc(1, 10*time.Millisecond)
	lambda := 80.0
	wqMM := mm.SojournSeconds(lambda) - 0.010
	wqMD := md.SojournSeconds(lambda) - 0.010
	if math.Abs(wqMD-wqMM/2) > 1e-9 {
		t.Errorf("M/D/1 wait %v, want half of M/M/1 wait %v", wqMD, wqMM)
	}
}

func TestMD1Capacity(t *testing.T) {
	md := NewMD1(4 * time.Millisecond)
	if got := md.Capacity(); math.Abs(got-250) > 1e-9 {
		t.Errorf("capacity = %v, want 250", got)
	}
	if !math.IsInf(md.SojournSeconds(260), 1) {
		t.Error("beyond capacity should be +Inf")
	}
}

func TestFitMMcRecoversTrueModel(t *testing.T) {
	// Generate noiseless samples from a known model; the fit must recover
	// mu closely.
	truth := MMc{Servers: 8, Mu: 125} // 8ms service time
	var samples []Sample
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.85} {
		lambda := rho * truth.Capacity()
		samples = append(samples, Sample{
			Lambda:  lambda,
			Latency: time.Duration(truth.SojournSeconds(lambda) * float64(time.Second)),
		})
	}
	got, err := FitMMc(8, samples)
	if err != nil {
		t.Fatalf("FitMMc: %v", err)
	}
	if math.Abs(got.Mu-truth.Mu) > 0.01*truth.Mu {
		t.Errorf("fitted mu = %v, want ~%v", got.Mu, truth.Mu)
	}
}

func TestFitMMcWithNoise(t *testing.T) {
	truth := MMc{Servers: 4, Mu: 200}
	noise := []float64{1.05, 0.97, 1.02, 0.95, 1.04, 0.99}
	var samples []Sample
	for i, rho := range []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85} {
		lambda := rho * truth.Capacity()
		w := truth.SojournSeconds(lambda) * noise[i]
		samples = append(samples, Sample{Lambda: lambda, Latency: time.Duration(w * float64(time.Second))})
	}
	got, err := FitMMc(4, samples)
	if err != nil {
		t.Fatalf("FitMMc: %v", err)
	}
	if math.Abs(got.Mu-truth.Mu) > 0.10*truth.Mu {
		t.Errorf("fitted mu = %v, want within 10%% of %v", got.Mu, truth.Mu)
	}
}

func TestFitMMcErrors(t *testing.T) {
	if _, err := FitMMc(0, []Sample{{Lambda: 1, Latency: time.Millisecond}}); err == nil {
		t.Error("servers=0 should error")
	}
	if _, err := FitMMc(2, nil); err == nil {
		t.Error("no samples should error")
	}
	// All-degenerate samples.
	if _, err := FitMMc(2, []Sample{{Lambda: -1, Latency: time.Millisecond}, {Lambda: 5, Latency: 0}}); err == nil {
		t.Error("degenerate samples should error")
	}
}

func TestLinearizeConvexity(t *testing.T) {
	m := MMc{Servers: 8, Mu: 100}
	segs, err := Linearize(m, nil)
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	if len(segs) != len(DefaultBreakFracs) {
		t.Fatalf("segments = %d, want %d", len(segs), len(DefaultBreakFracs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Slope < segs[i-1].Slope {
			t.Errorf("slopes not nondecreasing: seg %d slope %v < seg %d slope %v",
				i, segs[i].Slope, i-1, segs[i-1].Slope)
		}
	}
	wantWidth := 0.95 * m.Capacity()
	if got := TotalWidth(segs); math.Abs(got-wantWidth) > 1e-9 {
		t.Errorf("total width = %v, want %v", got, wantWidth)
	}
}

func TestLinearizeExactAtBreakpoints(t *testing.T) {
	m := MMc{Servers: 4, Mu: 250}
	segs, err := Linearize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range DefaultBreakFracs {
		lambda := f * m.Capacity()
		want := lambda * m.SojournSeconds(lambda)
		got := EvalPWL(segs, lambda)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("PWL at breakpoint rho=%v: %v, want %v", f, got, want)
		}
	}
}

func TestLinearizeOverestimatesBetweenBreakpoints(t *testing.T) {
	// The secant PWL of a convex function is an upper bound between
	// breakpoints (never flatters latency).
	m := MMc{Servers: 2, Mu: 500}
	segs, err := Linearize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rho := 0.05; rho < 0.95; rho += 0.033 {
		lambda := rho * m.Capacity()
		exact := lambda * m.SojournSeconds(lambda)
		pwl := EvalPWL(segs, lambda)
		if pwl < exact-1e-9 {
			t.Errorf("PWL underestimates at rho=%.2f: %v < %v", rho, pwl, exact)
		}
	}
}

func TestLinearizeValidation(t *testing.T) {
	m := MMc{Servers: 1, Mu: 100}
	if _, err := Linearize(m, []float64{0.5, 0.4}); err == nil {
		t.Error("non-increasing fracs should error")
	}
	if _, err := Linearize(m, []float64{0.5, 1.0}); err == nil {
		t.Error("frac >= 1 should error")
	}
	if _, err := Linearize(m, []float64{0}); err == nil {
		t.Error("frac 0 should error")
	}
	if _, err := Linearize(MMc{Servers: 1, Mu: 0}, nil); err == nil {
		t.Error("zero-capacity model should error")
	}
}

func TestEvalPWLBeyondWidthExtendsLastSlope(t *testing.T) {
	segs := []Segment{{Width: 10, Slope: 1}, {Width: 10, Slope: 2}}
	if got := EvalPWL(segs, 25); math.Abs(got-(10+20+10)) > 1e-12 {
		t.Errorf("EvalPWL(25) = %v, want 40", got)
	}
}

func TestFitMMcPropertyRoundTrip(t *testing.T) {
	// Property: for random true models, fitting noiseless samples drawn
	// from the model recovers capacity within 2%.
	f := func(servers8 uint8, muScaled uint16) bool {
		servers := int(servers8)%16 + 1
		mu := 20 + float64(muScaled%500)
		truth := MMc{Servers: servers, Mu: mu}
		var samples []Sample
		for _, rho := range []float64{0.2, 0.5, 0.8} {
			lambda := rho * truth.Capacity()
			samples = append(samples, Sample{
				Lambda:  lambda,
				Latency: time.Duration(truth.SojournSeconds(lambda) * float64(time.Second)),
			})
		}
		got, err := FitMMc(servers, samples)
		if err != nil {
			return false
		}
		return math.Abs(got.Capacity()-truth.Capacity()) <= 0.02*truth.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
