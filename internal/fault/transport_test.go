package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportPassThrough(t *testing.T) {
	srv := testServer(t)
	inj := NewInjector(sim.NewRNG(1))
	client := &http.Client{Transport: NewTransport(nil, inj, ClusterTarget("west"), Static(Global))}
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestTransportDropOnCrash(t *testing.T) {
	srv := testServer(t)
	inj := NewInjector(sim.NewRNG(1))
	inj.Crash(Global)
	client := &http.Client{Transport: NewTransport(nil, inj, ClusterTarget("west"), Static(Global))}
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("RPC to crashed target succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("error %v does not wrap ErrInjected", err)
	}
}

func TestTransportInjected503(t *testing.T) {
	srv := testServer(t)
	inj := NewInjector(sim.NewRNG(1))
	inj.AddRule(Rule{Fail: 1})
	client := &http.Client{Transport: NewTransport(nil, inj, ClusterTarget("west"), Static(Global))}
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Slate-Fault") != "injected" {
		t.Error("injected 503 not marked")
	}
}

func TestTransportDelayHonorsContext(t *testing.T) {
	srv := testServer(t)
	inj := NewInjector(sim.NewRNG(1))
	inj.AddRule(Rule{Delay: 10 * time.Second})
	client := &http.Client{Transport: NewTransport(nil, inj, ClusterTarget("west"), Static(Global))}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("delayed RPC completed despite context deadline")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancellation took %v; injected delay ignored the context", el)
	}
}

func TestHostMapResolution(t *testing.T) {
	hm := NewHostMap()
	hm.Register("http://10.0.0.4:7000", Global)
	hm.Register("10.1.0.4:7101", ClusterTarget(topology.East))

	mk := func(url string) *http.Request {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	if got := hm.TargetOf(mk("http://10.0.0.4:7000/v1/metrics")); got != Global {
		t.Errorf("TargetOf(global host) = %q", got)
	}
	if got := hm.TargetOf(mk("http://10.1.0.4:7101/v1/rules")); got != ClusterTarget(topology.East) {
		t.Errorf("TargetOf(east host) = %q", got)
	}
	// Unregistered hosts fall back to the raw host (matches nothing).
	if got := hm.TargetOf(mk("http://203.0.113.9:80/")); got != Target("203.0.113.9:80") {
		t.Errorf("TargetOf(unknown host) = %q", got)
	}
}
