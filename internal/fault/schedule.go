package fault

import (
	"sort"
	"time"

	"github.com/servicelayernetworking/slate/internal/topology"
)

// EventKind discriminates schedule events.
type EventKind int

const (
	// OutageEvent takes one component down for a window.
	OutageEvent EventKind = iota
	// PartitionEvent cuts two clusters off from each other for a window.
	PartitionEvent
)

// Event is one scheduled fault: active on [At, At+Dur).
type Event struct {
	Kind   EventKind
	Target Target             // OutageEvent: the crashed component
	A, B   topology.ClusterID // PartitionEvent: the cut cluster pair
	At     time.Duration      // start, relative to scenario time zero
	Dur    time.Duration      // window length
}

func (e Event) activeAt(now time.Duration) bool {
	return now >= e.At && now < e.At+e.Dur
}

// Schedule is a declarative fault timeline on virtual time: the
// discrete-event simulator queries it directly, and the emulation
// replays it onto an Injector via Injector.Sync. A nil *Schedule is
// valid and schedules nothing. Builder methods return the receiver for
// chaining and are not safe for concurrent use with queries; build the
// schedule fully before running.
type Schedule struct {
	events []Event
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// Outage schedules a component crash on [at, at+dur).
func (s *Schedule) Outage(t Target, at, dur time.Duration) *Schedule {
	s.events = append(s.events, Event{Kind: OutageEvent, Target: t, At: at, Dur: dur})
	return s
}

// Partition schedules a cluster partition on [at, at+dur).
func (s *Schedule) Partition(a, b topology.ClusterID, at, dur time.Duration) *Schedule {
	s.events = append(s.events, Event{Kind: PartitionEvent, A: a, B: b, At: at, Dur: dur})
	return s
}

// Flap schedules n short outages of t starting at `at`: each cycle is
// down for `down`, then up for `up`. It models a crash-looping
// controller.
func (s *Schedule) Flap(t Target, at time.Duration, n int, down, up time.Duration) *Schedule {
	for k := 0; k < n; k++ {
		s.Outage(t, at+time.Duration(k)*(down+up), down)
	}
	return s
}

// DownAt reports whether target t is inside an outage window at now.
func (s *Schedule) DownAt(t Target, now time.Duration) bool {
	if s == nil {
		return false
	}
	for _, ev := range s.events {
		if ev.Kind == OutageEvent && ev.Target == t && ev.activeAt(now) {
			return true
		}
	}
	return false
}

// PartitionedAt reports whether clusters a and b are cut off at now.
func (s *Schedule) PartitionedAt(a, b topology.ClusterID, now time.Duration) bool {
	if s == nil || a == b {
		return false
	}
	p := orderedPair(a, b)
	for _, ev := range s.events {
		if ev.Kind == PartitionEvent && orderedPair(ev.A, ev.B) == p && ev.activeAt(now) {
			return true
		}
	}
	return false
}

// EventsAt returns the events active at now.
func (s *Schedule) EventsAt(now time.Duration) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, ev := range s.events {
		if ev.activeAt(now) {
			out = append(out, ev)
		}
	}
	return out
}

// Events returns every scheduled event sorted by start time.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	out := append([]Event(nil), s.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Horizon returns the end of the last scheduled window.
func (s *Schedule) Horizon() time.Duration {
	if s == nil {
		return 0
	}
	var h time.Duration
	for _, ev := range s.events {
		if end := ev.At + ev.Dur; end > h {
			h = end
		}
	}
	return h
}

// Boundaries returns every distinct window edge (starts and ends)
// sorted ascending — the instants at which fault state can change.
// Replayers (the emulation) need only re-Sync at these times.
func (s *Schedule) Boundaries() []time.Duration {
	if s == nil {
		return nil
	}
	seen := map[time.Duration]bool{}
	var out []time.Duration
	for _, ev := range s.events {
		for _, t := range []time.Duration{ev.At, ev.At + ev.Dur} {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
