// Package fault is a seedable, deterministic fault injector for the
// SLATE control plane. The paper's Challenges section (§4) argues that
// a service-layer TE system is judged under an imperfect control plane
// — stale telemetry, slow reaction, controller unavailability — not in
// steady state. This package makes those conditions reproducible:
//
//   - Injector holds live fault state (crashed components, partitioned
//     clusters, probabilistic drop/delay/error rules) and decides, per
//     control RPC, what happens to it. All probabilistic decisions draw
//     from per-edge sim.RNG streams derived from one seed, so a fault
//     sequence replays identically across runs regardless of how
//     concurrent RPCs interleave.
//   - Transport wraps an http.RoundTripper so the Agent, Cluster and
//     Global clients (and the emulation mesh) suffer the injected
//     faults on the wire, exercising the real retry/degradation code.
//   - Schedule is a declarative virtual-time fault timeline (outages,
//     partitions, flapping) interpreted by the discrete-event simulator
//     and replayed onto an Injector by the emulation.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/topology"
)

// Target names one control-plane component. The naming convention
// embeds cluster membership so cluster-level partitions can be applied
// to every component inside the cluster: "global",
// "cluster:<id>", "proxy:<service>@<cluster>".
type Target string

// Global is the global controller's target name.
const Global Target = "global"

// GlobalReplica names one replica of a replicated global controller
// (replica 0 is "global:0", and so on). The unreplicated Global target
// remains its own name for backward compatibility.
func GlobalReplica(i int) Target {
	return Target("global:" + strconv.Itoa(i))
}

// ClusterTarget names a cluster controller.
func ClusterTarget(id topology.ClusterID) Target {
	return Target("cluster:" + string(id))
}

// ProxyTarget names a proxy sidecar.
func ProxyTarget(service string, cluster topology.ClusterID) Target {
	return Target("proxy:" + service + "@" + string(cluster))
}

// ClusterOf extracts the cluster a target lives in, or "" for the
// global controller and unrecognized names.
func ClusterOf(t Target) topology.ClusterID {
	s := string(t)
	if rest, ok := strings.CutPrefix(s, "cluster:"); ok {
		return topology.ClusterID(rest)
	}
	if rest, ok := strings.CutPrefix(s, "proxy:"); ok {
		if _, cl, ok := strings.Cut(rest, "@"); ok {
			return topology.ClusterID(cl)
		}
	}
	return ""
}

// ErrInjected is the sentinel wrapped by every injected transport
// failure, so hardened clients (and tests) can tell injected faults
// from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Rule is one probabilistic fault applied to RPCs matching its
// From/To targets (empty matches any). Probabilities are evaluated
// independently per RPC from the edge's derived stream.
type Rule struct {
	From, To Target
	// Drop is the probability the RPC fails with a transport error
	// before reaching the peer (a lost/refused connection).
	Drop float64
	// Fail is the probability the RPC is answered with a synthesized
	// 503 (the peer is up but erroring).
	Fail float64
	// Delay is added latency before the RPC is forwarded; Jitter
	// scales it uniformly in [1-Jitter, 1+Jitter].
	Delay  time.Duration
	Jitter float64
}

func (r Rule) matches(from, to Target) bool {
	return (r.From == "" || r.From == from) && (r.To == "" || r.To == to)
}

// Decision is the injector's verdict for one RPC.
type Decision struct {
	// Drop fails the RPC with a transport error (wrapping ErrInjected).
	Drop bool
	// Fail answers the RPC with a synthesized 503 without forwarding.
	Fail bool
	// Delay is injected latency to pay before forwarding.
	Delay time.Duration
}

type clusterPair [2]topology.ClusterID

func orderedPair(a, b topology.ClusterID) clusterPair {
	if b < a {
		a, b = b, a
	}
	return clusterPair{a, b}
}

// Injector holds live fault state and decides the fate of control
// RPCs. Safe for concurrent use. Probabilistic decisions are
// deterministic per (from, to) edge: each edge owns a sim.RNG stream
// derived from the injector's seed stream, so the i-th RPC on an edge
// sees the same draw in every run even when edges interleave
// differently under real concurrency.
type Injector struct {
	mu      sync.Mutex
	rng     *sim.RNG
	streams map[string]*sim.RNG
	down    map[Target]bool
	cuts    map[clusterPair]bool
	rules   []Rule

	// Injected-event counters by kind, cached so Decide's hot path is a
	// single atomic increment per verdict.
	mCrash, mPartition, mDrop, mFail, mDelay *obs.Counter
}

// NewInjector returns an injector drawing from rng (nil seeds a zero
// stream). Injected events count into obs.Default() under
// slate_fault_injected_total{kind}.
func NewInjector(rng *sim.RNG) *Injector {
	if rng == nil {
		rng = sim.NewRNG(0)
	}
	v := obs.Default().CounterVec("slate_fault_injected_total",
		"Faults injected into control RPCs, by kind.", "kind")
	return &Injector{
		rng:        rng,
		streams:    make(map[string]*sim.RNG),
		down:       make(map[Target]bool),
		cuts:       make(map[clusterPair]bool),
		mCrash:     v.With("crash"),
		mPartition: v.With("partition"),
		mDrop:      v.With("drop"),
		mFail:      v.With("fail"),
		mDelay:     v.With("delay"),
	}
}

// AddRule installs a probabilistic fault rule.
func (i *Injector) AddRule(r Rule) {
	i.mu.Lock()
	i.rules = append(i.rules, r)
	i.mu.Unlock()
}

// ClearRules removes every probabilistic rule (crashes and partitions
// are unaffected).
func (i *Injector) ClearRules() {
	i.mu.Lock()
	i.rules = nil
	i.mu.Unlock()
}

// Crash marks a component down: every RPC to or from it drops until
// Restart.
func (i *Injector) Crash(t Target) {
	i.mu.Lock()
	i.down[t] = true
	i.mu.Unlock()
}

// Restart brings a crashed component back.
func (i *Injector) Restart(t Target) {
	i.mu.Lock()
	delete(i.down, t)
	i.mu.Unlock()
}

// IsDown reports whether the component is crashed.
func (i *Injector) IsDown(t Target) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.down[t]
}

// PartitionClusters blocks every RPC between components of cluster a
// and components of cluster b (both directions) until HealClusters.
// The global controller lives outside every cluster and is unaffected.
func (i *Injector) PartitionClusters(a, b topology.ClusterID) {
	i.mu.Lock()
	i.cuts[orderedPair(a, b)] = true
	i.mu.Unlock()
}

// HealClusters removes a cluster partition.
func (i *Injector) HealClusters(a, b topology.ClusterID) {
	i.mu.Lock()
	delete(i.cuts, orderedPair(a, b))
	i.mu.Unlock()
}

// HealAll clears every crash and partition (rules stay).
func (i *Injector) HealAll() {
	i.mu.Lock()
	i.down = make(map[Target]bool)
	i.cuts = make(map[clusterPair]bool)
	i.mu.Unlock()
}

// Partitioned reports whether the clusters of from and to are
// currently cut off from each other.
func (i *Injector) Partitioned(from, to Target) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.partitionedLocked(from, to)
}

func (i *Injector) partitionedLocked(from, to Target) bool {
	ca, cb := ClusterOf(from), ClusterOf(to)
	if ca == "" || cb == "" || ca == cb {
		return false
	}
	return i.cuts[orderedPair(ca, cb)]
}

// Decide returns the fate of one RPC from -> to. Crashes and
// partitions drop deterministically; rules draw from the edge's
// stream. Rule draws happen in installation order with a fixed draw
// count per rule, keeping edge streams aligned across runs.
func (i *Injector) Decide(from, to Target) Decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.down[to] || i.down[from] {
		i.mCrash.Inc()
		return Decision{Drop: true}
	}
	if i.partitionedLocked(from, to) {
		i.mPartition.Inc()
		return Decision{Drop: true}
	}
	var d Decision
	for _, r := range i.rules {
		if !r.matches(from, to) {
			continue
		}
		stream := i.edgeStreamLocked(from, to)
		// Fixed three draws per matching rule per RPC: the stream stays
		// aligned whatever the rule outcome.
		uDrop, uFail, uJit := stream.Float64(), stream.Float64(), stream.Float64()
		if r.Drop > 0 && uDrop < r.Drop {
			if !d.Drop {
				i.mDrop.Inc()
			}
			d.Drop = true
		}
		if r.Fail > 0 && uFail < r.Fail {
			if !d.Fail {
				i.mFail.Inc()
			}
			d.Fail = true
		}
		if r.Delay > 0 {
			if d.Delay == 0 {
				i.mDelay.Inc()
			}
			scale := 1.0
			if r.Jitter > 0 {
				scale = 1 + r.Jitter*(2*uJit-1)
			}
			d.Delay += time.Duration(float64(r.Delay) * scale)
		}
	}
	return d
}

func (i *Injector) edgeStreamLocked(from, to Target) *sim.RNG {
	key := string(from) + "->" + string(to)
	s, ok := i.streams[key]
	if !ok {
		s = i.rng.DeriveNamed(key)
		i.streams[key] = s
	}
	return s
}

// Sync replaces the injector's crash and partition state with the
// schedule's state at virtual time now. Probabilistic rules installed
// by hand are preserved. The emulation mesh calls this as wall-clock
// time advances to replay a declarative fault timeline.
func (i *Injector) Sync(s *Schedule, now time.Duration) {
	down := make(map[Target]bool)
	cuts := make(map[clusterPair]bool)
	for _, ev := range s.EventsAt(now) {
		switch ev.Kind {
		case OutageEvent:
			down[ev.Target] = true
		case PartitionEvent:
			cuts[orderedPair(ev.A, ev.B)] = true
		}
	}
	i.mu.Lock()
	i.down = down
	i.cuts = cuts
	i.mu.Unlock()
}

// String summarizes live fault state for logs.
func (i *Injector) String() string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return fmt.Sprintf("fault.Injector{down:%d partitions:%d rules:%d}",
		len(i.down), len(i.cuts), len(i.rules))
}
