package fault

import (
	"testing"
	"time"

	"github.com/servicelayernetworking/slate/internal/sim"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func TestTargetNaming(t *testing.T) {
	if got := ClusterTarget(topology.West); got != "cluster:west" {
		t.Errorf("ClusterTarget = %q", got)
	}
	if got := ProxyTarget("checkout", topology.East); got != "proxy:checkout@east" {
		t.Errorf("ProxyTarget = %q", got)
	}
	cases := map[Target]topology.ClusterID{
		Global:                          "",
		ClusterTarget(topology.West):    topology.West,
		ProxyTarget("svc", "east"):      "east",
		Target("127.0.0.1:8080"):        "",
		Target("proxy:noclustermarker"): "",
	}
	for in, want := range cases {
		if got := ClusterOf(in); got != want {
			t.Errorf("ClusterOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCrashRestart(t *testing.T) {
	inj := NewInjector(sim.NewRNG(1))
	cc := ClusterTarget(topology.West)
	if d := inj.Decide(cc, Global); d.Drop {
		t.Fatal("healthy edge dropped")
	}
	inj.Crash(Global)
	if !inj.IsDown(Global) {
		t.Error("IsDown(global) = false after Crash")
	}
	if d := inj.Decide(cc, Global); !d.Drop {
		t.Error("RPC to crashed global not dropped")
	}
	if d := inj.Decide(Global, cc); !d.Drop {
		t.Error("RPC from crashed global not dropped")
	}
	inj.Restart(Global)
	if d := inj.Decide(cc, Global); d.Drop {
		t.Error("RPC dropped after Restart")
	}
}

func TestPartitionBlocksCrossClusterOnly(t *testing.T) {
	inj := NewInjector(sim.NewRNG(1))
	inj.PartitionClusters(topology.West, topology.East)
	wp := ProxyTarget("svc", topology.West)
	ep := ProxyTarget("svc", topology.East)
	wc := ClusterTarget(topology.West)
	ec := ClusterTarget(topology.East)
	if d := inj.Decide(wp, ec); !d.Drop {
		t.Error("west proxy -> east cc not dropped under partition")
	}
	if d := inj.Decide(ep, wc); !d.Drop {
		t.Error("east proxy -> west cc not dropped under partition")
	}
	if d := inj.Decide(wp, wc); d.Drop {
		t.Error("intra-cluster RPC dropped under partition")
	}
	// The global controller lives outside every cluster: reachable.
	if d := inj.Decide(wc, Global); d.Drop {
		t.Error("cluster -> global dropped by a west/east partition")
	}
	inj.HealClusters(topology.East, topology.West) // order-insensitive
	if d := inj.Decide(wp, ec); d.Drop {
		t.Error("RPC dropped after HealClusters")
	}
}

// TestDecideDeterministic: the same seed must replay the identical
// decision sequence on an edge, and interleaving draws on another edge
// must not perturb it (per-edge derived streams).
func TestDecideDeterministic(t *testing.T) {
	run := func(interleave bool) []Decision {
		inj := NewInjector(sim.NewRNG(42))
		inj.AddRule(Rule{Drop: 0.3, Fail: 0.2, Delay: 10 * time.Millisecond, Jitter: 0.5})
		a, b := ClusterTarget("west"), Global
		other := ClusterTarget("east")
		var out []Decision
		for k := 0; k < 200; k++ {
			if interleave {
				inj.Decide(other, Global)
			}
			out = append(out, inj.Decide(a, b))
		}
		return out
	}
	base := run(false)
	inter := run(true)
	var drops, fails int
	for k := range base {
		if base[k] != inter[k] {
			t.Fatalf("decision %d differs with interleaved edge: %+v vs %+v", k, base[k], inter[k])
		}
		if base[k].Drop {
			drops++
		}
		if base[k].Fail {
			fails++
		}
	}
	// Sanity: the probabilistic rule actually fires at roughly its rate.
	if drops < 30 || drops > 90 {
		t.Errorf("drops = %d over 200 draws at p=0.3", drops)
	}
	if fails < 15 || fails > 70 {
		t.Errorf("fails = %d over 200 draws at p=0.2", fails)
	}
}

func TestRuleMatchingAndClear(t *testing.T) {
	inj := NewInjector(sim.NewRNG(7))
	inj.AddRule(Rule{From: ClusterTarget("west"), To: Global, Drop: 1})
	if d := inj.Decide(ClusterTarget("west"), Global); !d.Drop {
		t.Error("matching rule did not fire")
	}
	if d := inj.Decide(ClusterTarget("east"), Global); d.Drop {
		t.Error("non-matching From fired")
	}
	inj.ClearRules()
	if d := inj.Decide(ClusterTarget("west"), Global); d.Drop {
		t.Error("rule fired after ClearRules")
	}
}

func TestDelayJitterBounds(t *testing.T) {
	inj := NewInjector(sim.NewRNG(3))
	const base = 100 * time.Millisecond
	inj.AddRule(Rule{Delay: base, Jitter: 0.5})
	for k := 0; k < 100; k++ {
		d := inj.Decide(ClusterTarget("west"), Global)
		if d.Delay < base/2 || d.Delay > 3*base/2 {
			t.Fatalf("delay %v outside [%v, %v]", d.Delay, base/2, 3*base/2)
		}
	}
}

func TestScheduleQueries(t *testing.T) {
	s := NewSchedule().
		Outage(Global, 10*time.Second, 20*time.Second).
		Partition(topology.West, topology.East, 15*time.Second, 10*time.Second).
		Flap(Global, 40*time.Second, 3, time.Second, time.Second)

	if s.DownAt(Global, 9*time.Second) {
		t.Error("down before outage start")
	}
	if !s.DownAt(Global, 10*time.Second) {
		t.Error("not down at outage start (inclusive)")
	}
	if s.DownAt(Global, 30*time.Second) {
		t.Error("down at outage end (exclusive)")
	}
	if s.DownAt(ClusterTarget("west"), 15*time.Second) {
		t.Error("outage leaked to another target")
	}

	if !s.PartitionedAt(topology.East, topology.West, 20*time.Second) {
		t.Error("partition query not order-insensitive")
	}
	if s.PartitionedAt(topology.West, topology.West, 20*time.Second) {
		t.Error("cluster partitioned from itself")
	}

	// Flap: down at 40s and 42s..43s, up at 41s..42s.
	if !s.DownAt(Global, 40*time.Second+500*time.Millisecond) {
		t.Error("not down in first flap window")
	}
	if s.DownAt(Global, 41*time.Second+500*time.Millisecond) {
		t.Error("down between flap windows")
	}
	if !s.DownAt(Global, 42*time.Second+500*time.Millisecond) {
		t.Error("not down in second flap window")
	}

	// Last flap window starts at 44s and lasts 1s.
	if got := s.Horizon(); got != 45*time.Second {
		t.Errorf("Horizon = %v, want 45s", got)
	}

	evs := s.Events()
	for k := 1; k < len(evs); k++ {
		if evs[k].At < evs[k-1].At {
			t.Fatal("Events not sorted by start")
		}
	}
	bs := s.Boundaries()
	for k := 1; k < len(bs); k++ {
		if bs[k] <= bs[k-1] {
			t.Fatal("Boundaries not strictly ascending")
		}
	}
}

func TestNilScheduleIsInert(t *testing.T) {
	var s *Schedule
	if s.DownAt(Global, 0) || s.PartitionedAt("a", "b", 0) {
		t.Error("nil schedule reported a fault")
	}
	if s.Events() != nil || s.EventsAt(0) != nil || s.Boundaries() != nil {
		t.Error("nil schedule returned events")
	}
	if s.Horizon() != 0 {
		t.Error("nil schedule has a horizon")
	}
}

func TestInjectorSyncReplaysSchedule(t *testing.T) {
	s := NewSchedule().
		Outage(Global, 10*time.Second, 10*time.Second).
		Partition(topology.West, topology.East, 12*time.Second, 5*time.Second)
	inj := NewInjector(sim.NewRNG(1))

	inj.Sync(s, 15*time.Second)
	if !inj.IsDown(Global) {
		t.Error("global not down mid-outage after Sync")
	}
	if !inj.Partitioned(ProxyTarget("svc", topology.West), ClusterTarget(topology.East)) {
		t.Error("partition not applied by Sync")
	}

	inj.Sync(s, 25*time.Second)
	if inj.IsDown(Global) {
		t.Error("global still down after outage window")
	}
	if inj.Partitioned(ProxyTarget("svc", topology.West), ClusterTarget(topology.East)) {
		t.Error("partition still applied after window")
	}
}
