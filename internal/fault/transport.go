package fault

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// TargetResolver maps an outbound request to the Target it addresses,
// so the injector can match crashes, partitions and per-edge rules.
type TargetResolver interface {
	TargetOf(req *http.Request) Target
}

// TargetFunc adapts a function to TargetResolver.
type TargetFunc func(req *http.Request) Target

// TargetOf implements TargetResolver.
func (f TargetFunc) TargetOf(req *http.Request) Target { return f(req) }

// Static resolves every request to one fixed target — the common case
// for an Agent, whose client only ever dials its cluster controller.
func Static(t Target) TargetResolver {
	return TargetFunc(func(*http.Request) Target { return t })
}

// HostMap resolves targets by the request's host:port — the emulation
// mesh registers every component's listener here as it starts. Safe
// for concurrent use. Unregistered hosts resolve to Target(host),
// which matches no crash or partition state.
type HostMap struct {
	mu sync.RWMutex
	m  map[string]Target
}

// NewHostMap returns an empty host map.
func NewHostMap() *HostMap { return &HostMap{m: make(map[string]Target)} }

// Register maps a host:port (a bare URL is tolerated) to a target.
func (h *HostMap) Register(hostport string, t Target) {
	hostport = strings.TrimPrefix(hostport, "http://")
	hostport = strings.TrimPrefix(hostport, "https://")
	h.mu.Lock()
	h.m[hostport] = t
	h.mu.Unlock()
}

// TargetOf implements TargetResolver.
func (h *HostMap) TargetOf(req *http.Request) Target {
	h.mu.RLock()
	t, ok := h.m[req.URL.Host]
	h.mu.RUnlock()
	if !ok {
		return Target(req.URL.Host)
	}
	return t
}

// Transport is an http.RoundTripper that subjects requests to an
// Injector's verdicts before delegating to the base transport. It is
// what the Agent, Cluster and Global clients are wrapped with under
// fault injection.
type Transport struct {
	base     http.RoundTripper
	injector *Injector
	from     Target
	to       TargetResolver
}

// NewTransport wraps base (nil means http.DefaultTransport) so that
// requests from `from` to the resolved target suffer inj's faults. A
// nil resolver targets requests by their URL host.
func NewTransport(base http.RoundTripper, inj *Injector, from Target, to TargetResolver) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if to == nil {
		to = TargetFunc(func(req *http.Request) Target { return Target(req.URL.Host) })
	}
	return &Transport{base: base, injector: inj, from: from, to: to}
}

// RoundTrip implements http.RoundTripper. Injected delay respects the
// request context; drops close the request body as the contract
// requires.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	to := t.to.TargetOf(req)
	d := t.injector.Decide(t.from, to)
	if d.Delay > 0 {
		timer := time.NewTimer(d.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			closeBody(req)
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if d.Drop {
		closeBody(req)
		return nil, fmt.Errorf("fault: %s -> %s dropped: %w", t.from, to, ErrInjected)
	}
	if d.Fail {
		closeBody(req)
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"X-Slate-Fault": []string{"injected"}},
			Body:       io.NopCloser(strings.NewReader("fault: injected 503")),
			Request:    req,
		}, nil
	}
	return t.base.RoundTrip(req)
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}
