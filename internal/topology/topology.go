// Package topology models the multi-cluster deployment substrate: a set
// of geo-distributed clusters, the inter-cluster network latency matrix,
// and the inter-cluster egress bandwidth price matrix.
//
// The paper's evaluation runs on a real Google Cloud topology with
// clusters in Oregon (OR), Utah (UT), Iowa (IOW) and South Carolina (SC)
// and tc-emulated median VM-to-VM RTTs. GCPTopology reproduces exactly
// those numbers.
package topology

import (
	"fmt"
	"sort"
	"time"
)

// ClusterID names a cluster. IDs are free-form but must be unique within
// a Topology.
type ClusterID string

// Cluster describes one Kubernetes-style cluster: an isolated failure
// domain with its own replica pools.
type Cluster struct {
	ID     ClusterID
	Region string // human-readable region, e.g. "us-west1"
	// Zone multiplicity or node counts are not modeled: SLATE's routing
	// decisions are at cluster granularity, and intra-cluster balancing
	// is delegated to standard load balancing (paper §3.3).
}

// Topology is an immutable set of clusters plus pairwise network
// characteristics. Build one with NewBuilder (or a preset) and share it
// freely; all methods are safe for concurrent use.
type Topology struct {
	clusters []Cluster
	index    map[ClusterID]int
	rtt      [][]time.Duration // symmetric, zero diagonal
	egress   [][]float64       // $ per GB, zero diagonal
}

// Builder accumulates clusters and links for a Topology.
type Builder struct {
	clusters []Cluster
	rtts     map[[2]ClusterID]time.Duration
	egress   map[[2]ClusterID]float64
	defEgr   float64
	err      error
}

// NewBuilder returns an empty topology builder. defaultEgressPerGB is
// applied to any cluster pair without an explicit SetEgressCost.
func NewBuilder(defaultEgressPerGB float64) *Builder {
	return &Builder{
		rtts:   make(map[[2]ClusterID]time.Duration),
		egress: make(map[[2]ClusterID]float64),
		defEgr: defaultEgressPerGB,
	}
}

// AddCluster registers a cluster.
func (b *Builder) AddCluster(id ClusterID, region string) *Builder {
	for _, c := range b.clusters {
		if c.ID == id {
			b.fail(fmt.Errorf("duplicate cluster %q", id))
			return b
		}
	}
	b.clusters = append(b.clusters, Cluster{ID: id, Region: region})
	return b
}

// SetRTT declares the round-trip network latency between two clusters.
// The matrix is symmetric; declaring either direction suffices.
func (b *Builder) SetRTT(a, c ClusterID, rtt time.Duration) *Builder {
	if rtt < 0 {
		b.fail(fmt.Errorf("negative RTT %v between %q and %q", rtt, a, c))
		return b
	}
	b.rtts[key(a, c)] = rtt
	return b
}

// SetEgressCost declares the egress bandwidth price in dollars per GB for
// traffic between two clusters (symmetric).
func (b *Builder) SetEgressCost(a, c ClusterID, perGB float64) *Builder {
	if perGB < 0 {
		b.fail(fmt.Errorf("negative egress cost between %q and %q", a, c))
		return b
	}
	b.egress[key(a, c)] = perGB
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func key(a, c ClusterID) [2]ClusterID {
	if a > c {
		a, c = c, a
	}
	return [2]ClusterID{a, c}
}

// Build validates the accumulated data and returns the topology. Every
// distinct cluster pair must have an RTT.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.clusters) == 0 {
		return nil, fmt.Errorf("topology has no clusters")
	}
	t := &Topology{
		clusters: append([]Cluster(nil), b.clusters...),
		index:    make(map[ClusterID]int, len(b.clusters)),
	}
	n := len(t.clusters)
	for i, c := range t.clusters {
		t.index[c.ID] = i
	}
	t.rtt = make([][]time.Duration, n)
	t.egress = make([][]float64, n)
	for i := range t.rtt {
		t.rtt[i] = make([]time.Duration, n)
		t.egress[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, c := t.clusters[i].ID, t.clusters[j].ID
			rtt, ok := b.rtts[key(a, c)]
			if !ok {
				return nil, fmt.Errorf("missing RTT between %q and %q", a, c)
			}
			t.rtt[i][j], t.rtt[j][i] = rtt, rtt
			e, ok := b.egress[key(a, c)]
			if !ok {
				e = b.defEgr
			}
			t.egress[i][j], t.egress[j][i] = e, e
		}
	}
	return t, nil
}

// MustBuild is Build that panics on error; for package-level presets and
// tests.
func (b *Builder) MustBuild() *Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Clusters returns the clusters in registration order. The caller must
// not mutate the returned slice.
func (t *Topology) Clusters() []Cluster { return t.clusters }

// ClusterIDs returns all cluster IDs in registration order.
func (t *Topology) ClusterIDs() []ClusterID {
	ids := make([]ClusterID, len(t.clusters))
	for i, c := range t.clusters {
		ids[i] = c.ID
	}
	return ids
}

// Has reports whether id names a cluster in the topology.
func (t *Topology) Has(id ClusterID) bool {
	_, ok := t.index[id]
	return ok
}

// NumClusters returns the number of clusters.
func (t *Topology) NumClusters() int { return len(t.clusters) }

// RTT returns the round-trip network latency between two clusters (zero
// for a cluster to itself). Unknown IDs panic: topologies are static and
// an unknown ID is a configuration bug.
func (t *Topology) RTT(a, b ClusterID) time.Duration {
	return t.rtt[t.mustIndex(a)][t.mustIndex(b)]
}

// OneWay returns the one-way network delay between two clusters,
// approximated as RTT/2.
func (t *Topology) OneWay(a, b ClusterID) time.Duration {
	return t.RTT(a, b) / 2
}

// EgressCostPerGB returns the egress price in $/GB between two clusters
// (zero within a cluster).
func (t *Topology) EgressCostPerGB(a, b ClusterID) float64 {
	return t.egress[t.mustIndex(a)][t.mustIndex(b)]
}

// EgressCost returns the dollar cost of moving n bytes between clusters.
func (t *Topology) EgressCost(a, b ClusterID, bytes int64) float64 {
	const gb = 1 << 30
	return t.EgressCostPerGB(a, b) * float64(bytes) / gb
}

func (t *Topology) mustIndex(id ClusterID) int {
	i, ok := t.index[id]
	if !ok {
		panic(fmt.Sprintf("topology: unknown cluster %q", id))
	}
	return i
}

// Nearest returns the clusters ordered by ascending RTT from the given
// cluster, excluding the cluster itself. This is the order in which the
// Waterfall baseline considers spillover targets.
func (t *Topology) Nearest(from ClusterID) []ClusterID {
	i := t.mustIndex(from)
	type pair struct {
		id  ClusterID
		rtt time.Duration
	}
	ps := make([]pair, 0, len(t.clusters)-1)
	for j, c := range t.clusters {
		if j == i {
			continue
		}
		ps = append(ps, pair{c.ID, t.rtt[i][j]})
	}
	sort.SliceStable(ps, func(a, b int) bool {
		if ps[a].rtt != ps[b].rtt {
			return ps[a].rtt < ps[b].rtt
		}
		return ps[a].id < ps[b].id
	})
	out := make([]ClusterID, len(ps))
	for k, p := range ps {
		out[k] = p.id
	}
	return out
}

// Paper GCP cluster IDs.
const (
	OR  ClusterID = "or"  // us-west1 (Oregon)
	UT  ClusterID = "ut"  // us-west3 (Utah)
	IOW ClusterID = "iow" // us-central1 (Iowa)
	SC  ClusterID = "sc"  // us-east1 (South Carolina)
)

// DefaultEgressPerGB is a typical inter-region egress price within a
// cloud provider in North America ($0.01/GB, GCP's us-to-us tier).
const DefaultEgressPerGB = 0.01

// GCPTopology returns the four-cluster Google Cloud topology from the
// paper (§4.2) with its measured median inter-region VM-to-VM RTTs:
// OR-UT 30ms, UT-IOW 20ms, IOW-SC 35ms, OR-SC 66ms, OR-IOW 37ms. The
// UT-SC latency is not reported in the paper; we use 52ms, consistent
// with the triangle UT-IOW-SC and public GCP measurements.
func GCPTopology() *Topology {
	return NewBuilder(DefaultEgressPerGB).
		AddCluster(OR, "us-west1").
		AddCluster(UT, "us-west3").
		AddCluster(IOW, "us-central1").
		AddCluster(SC, "us-east1").
		SetRTT(OR, UT, 30*time.Millisecond).
		SetRTT(UT, IOW, 20*time.Millisecond).
		SetRTT(IOW, SC, 35*time.Millisecond).
		SetRTT(OR, SC, 66*time.Millisecond).
		SetRTT(OR, IOW, 37*time.Millisecond).
		SetRTT(UT, SC, 52*time.Millisecond).
		MustBuild()
}

// TwoClusters returns a west/east pair with the given RTT, the topology
// used by the paper's "how much to route" experiments (§4.1, Fig. 4/6a).
func TwoClusters(rtt time.Duration) *Topology {
	return NewBuilder(DefaultEgressPerGB).
		AddCluster(West, "us-west").
		AddCluster(East, "us-east").
		SetRTT(West, East, rtt).
		MustBuild()
}

// Cluster IDs for TwoClusters.
const (
	West ClusterID = "west"
	East ClusterID = "east"
)
