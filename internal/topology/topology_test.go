package topology

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBuilderValidation(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*Topology, error)
		wantErr string
	}{
		{
			name:    "empty",
			build:   func() (*Topology, error) { return NewBuilder(0).Build() },
			wantErr: "no clusters",
		},
		{
			name: "duplicate cluster",
			build: func() (*Topology, error) {
				return NewBuilder(0).AddCluster("a", "r").AddCluster("a", "r").Build()
			},
			wantErr: "duplicate",
		},
		{
			name: "missing rtt",
			build: func() (*Topology, error) {
				return NewBuilder(0).AddCluster("a", "r").AddCluster("b", "r").Build()
			},
			wantErr: "missing RTT",
		},
		{
			name: "negative rtt",
			build: func() (*Topology, error) {
				return NewBuilder(0).AddCluster("a", "r").AddCluster("b", "r").
					SetRTT("a", "b", -time.Second).Build()
			},
			wantErr: "negative RTT",
		},
		{
			name: "negative egress",
			build: func() (*Topology, error) {
				return NewBuilder(0).AddCluster("a", "r").AddCluster("b", "r").
					SetRTT("a", "b", time.Millisecond).
					SetEgressCost("a", "b", -1).Build()
			},
			wantErr: "negative egress",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestRTTSymmetricZeroDiagonal(t *testing.T) {
	top := GCPTopology()
	for _, a := range top.ClusterIDs() {
		if top.RTT(a, a) != 0 {
			t.Errorf("RTT(%s,%s) = %v, want 0", a, a, top.RTT(a, a))
		}
		for _, b := range top.ClusterIDs() {
			if top.RTT(a, b) != top.RTT(b, a) {
				t.Errorf("RTT not symmetric for %s,%s", a, b)
			}
		}
	}
}

func TestGCPTopologyMatchesPaper(t *testing.T) {
	top := GCPTopology()
	want := []struct {
		a, b ClusterID
		rtt  time.Duration
	}{
		{OR, UT, 30 * time.Millisecond},
		{UT, IOW, 20 * time.Millisecond},
		{IOW, SC, 35 * time.Millisecond},
		{OR, SC, 66 * time.Millisecond},
		{OR, IOW, 37 * time.Millisecond},
	}
	for _, w := range want {
		if got := top.RTT(w.a, w.b); got != w.rtt {
			t.Errorf("RTT(%s,%s) = %v, want %v (paper §4.2)", w.a, w.b, got, w.rtt)
		}
	}
	if top.NumClusters() != 4 {
		t.Errorf("NumClusters = %d, want 4", top.NumClusters())
	}
}

func TestOneWayIsHalfRTT(t *testing.T) {
	top := GCPTopology()
	if got := top.OneWay(OR, UT); got != 15*time.Millisecond {
		t.Errorf("OneWay(OR,UT) = %v, want 15ms", got)
	}
}

func TestNearestOrdering(t *testing.T) {
	top := GCPTopology()
	got := top.Nearest(OR)
	want := []ClusterID{UT, IOW, SC} // 30 < 37 < 66
	if len(got) != len(want) {
		t.Fatalf("Nearest(OR) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nearest(OR) = %v, want %v", got, want)
		}
	}
	// From UT: OR 30, IOW 20, SC 52 -> IOW, OR, SC.
	got = top.Nearest(UT)
	want = []ClusterID{IOW, OR, SC}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nearest(UT) = %v, want %v", got, want)
		}
	}
}

func TestNearestTieBreaksByID(t *testing.T) {
	top := NewBuilder(0).
		AddCluster("a", "r").AddCluster("b", "r").AddCluster("c", "r").
		SetRTT("a", "b", 10*time.Millisecond).
		SetRTT("a", "c", 10*time.Millisecond).
		SetRTT("b", "c", 10*time.Millisecond).
		MustBuild()
	got := top.Nearest("a")
	if got[0] != "b" || got[1] != "c" {
		t.Errorf("Nearest tie-break = %v, want [b c]", got)
	}
}

func TestEgressCost(t *testing.T) {
	top := TwoClusters(40 * time.Millisecond)
	if c := top.EgressCostPerGB(West, West); !almostEqual(c, 0) {
		t.Errorf("intra-cluster egress = %v, want 0", c)
	}
	if c := top.EgressCostPerGB(West, East); !almostEqual(c, DefaultEgressPerGB) {
		t.Errorf("egress = %v, want %v", c, DefaultEgressPerGB)
	}
	// 1 GiB across costs exactly the per-GB price.
	if c := top.EgressCost(West, East, 1<<30); !almostEqual(c, DefaultEgressPerGB) {
		t.Errorf("EgressCost(1GiB) = %v, want %v", c, DefaultEgressPerGB)
	}
	if c := top.EgressCost(West, East, 0); !almostEqual(c, 0) {
		t.Errorf("EgressCost(0) = %v, want 0", c)
	}
}

func TestEgressCostOverride(t *testing.T) {
	top := NewBuilder(0.01).
		AddCluster("a", "r").AddCluster("b", "r").
		SetRTT("a", "b", time.Millisecond).
		SetEgressCost("a", "b", 0.08).
		MustBuild()
	if c := top.EgressCostPerGB("a", "b"); !almostEqual(c, 0.08) {
		t.Errorf("egress override = %v, want 0.08", c)
	}
}

func TestUnknownClusterPanics(t *testing.T) {
	top := TwoClusters(time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("RTT with unknown cluster did not panic")
		}
	}()
	top.RTT("nope", West)
}

func TestHas(t *testing.T) {
	top := TwoClusters(time.Millisecond)
	if !top.Has(West) || !top.Has(East) {
		t.Error("Has returned false for existing clusters")
	}
	if top.Has("nope") {
		t.Error("Has returned true for unknown cluster")
	}
}

func TestNearestPermutationProperty(t *testing.T) {
	// Property: Nearest returns each other cluster exactly once, in
	// nondecreasing RTT order.
	top := GCPTopology()
	f := func(pick uint8) bool {
		ids := top.ClusterIDs()
		from := ids[int(pick)%len(ids)]
		near := top.Nearest(from)
		if len(near) != len(ids)-1 {
			return false
		}
		seen := map[ClusterID]bool{from: true}
		var prev time.Duration = -1
		for _, id := range near {
			if seen[id] {
				return false
			}
			seen[id] = true
			rtt := top.RTT(from, id)
			if rtt < prev {
				return false
			}
			prev = rtt
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
