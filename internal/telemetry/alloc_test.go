package telemetry

import (
	"testing"
	"time"
)

// TestHistogramRecordAllocationFree pins telemetry ingestion — called
// once per simulated request completion — at zero heap allocations.
func TestHistogramRecordAllocationFree(t *testing.T) {
	h := DefaultHistogram()
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		h.Record(time.Duration(i%100) * time.Millisecond)
		i++
	}); n != 0 { //slate:nolint floatcmp -- AllocsPerRun returns an integer-valued count
		t.Fatalf("Record allocates %v per run, want 0", n)
	}
}
