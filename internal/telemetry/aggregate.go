package telemetry

import (
	"sort"
	"sync"
	"time"
)

// E2EService is the conventional pseudo-service name under which
// runtimes report end-to-end request latency (measured at the ingress,
// spanning the whole call tree). Per-service keys report pool sojourn
// times (queue wait + own service time), which is what latency-profile
// fitting needs; the controller's objective guardrail prefers the
// end-to-end stream when present.
const E2EService = "__e2e__"

// MetricKey identifies one telemetry stream: a traffic class at a
// service in a cluster.
type MetricKey struct {
	Service string
	Class   string
	Cluster string
}

// WindowStats is the aggregate the cluster controller reports upstream
// for one key over one collection window.
type WindowStats struct {
	Key      MetricKey
	Window   time.Duration
	Requests uint64
	// RPS is Requests divided by the window.
	RPS float64
	// MeanLatency, P50 and P99 summarize the sojourn time observed at
	// the service (per-span latency, not end-to-end).
	MeanLatency time.Duration
	P50, P99    time.Duration
	// EgressBytes counts bytes this key sent across cluster boundaries
	// during the window.
	EgressBytes int64
}

// Aggregator accumulates per-request observations and produces
// WindowStats on Flush. It is clock-agnostic: the caller decides when a
// window ends and how long it was, which lets the same type serve the
// virtual-time simulator and the wall-clock emulation. Safe for
// concurrent use.
type Aggregator struct {
	mu      sync.Mutex
	buckets map[MetricKey]*bucket
}

type bucket struct {
	hist   *Histogram
	egress int64
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{buckets: make(map[MetricKey]*bucket)}
}

// Record adds one request observation for the key.
func (a *Aggregator) Record(key MetricKey, latency time.Duration, egressBytes int64) {
	a.mu.Lock()
	b, ok := a.buckets[key]
	if !ok {
		b = &bucket{hist: DefaultHistogram()}
		a.buckets[key] = b
	}
	b.hist.Record(latency)
	b.egress += egressBytes
	a.mu.Unlock()
}

// Flush returns stats for every key observed since the last flush,
// computed over the given window length, and resets the aggregator.
// Keys are returned in deterministic (sorted) order.
func (a *Aggregator) Flush(window time.Duration) []WindowStats {
	a.mu.Lock()
	buckets := a.buckets
	a.buckets = make(map[MetricKey]*bucket, len(buckets))
	a.mu.Unlock()

	out := make([]WindowStats, 0, len(buckets))
	for key, b := range buckets {
		ws := WindowStats{
			Key:         key,
			Window:      window,
			Requests:    b.hist.Count(),
			MeanLatency: b.hist.Mean(),
			P50:         b.hist.Quantile(0.50),
			P99:         b.hist.Quantile(0.99),
			EgressBytes: b.egress,
		}
		if window > 0 {
			ws.RPS = float64(ws.Requests) / window.Seconds()
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i].Key, out[j].Key) })
	return out
}

func lessKey(a, b MetricKey) bool {
	if a.Service != b.Service {
		return a.Service < b.Service
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Cluster < b.Cluster
}

// Merge combines window stats from multiple aggregators (e.g. one per
// proxy) that cover the same window into per-key totals. Latency
// summaries are combined as request-weighted means; quantiles take the
// max (a conservative upper summary, since exact cross-node quantile
// merging needs the histograms — the cluster controller ships
// WindowStats, not raw histograms, to bound fan-in bandwidth).
func Merge(groups ...[]WindowStats) []WindowStats {
	acc := make(map[MetricKey]*WindowStats)
	for _, g := range groups {
		for _, ws := range g {
			cur, ok := acc[ws.Key]
			if !ok {
				copyWS := ws
				acc[ws.Key] = &copyWS
				continue
			}
			total := cur.Requests + ws.Requests
			if total > 0 {
				cur.MeanLatency = time.Duration(
					(float64(cur.MeanLatency)*float64(cur.Requests) +
						float64(ws.MeanLatency)*float64(ws.Requests)) / float64(total))
			}
			if ws.P50 > cur.P50 {
				cur.P50 = ws.P50
			}
			if ws.P99 > cur.P99 {
				cur.P99 = ws.P99
			}
			cur.Requests = total
			cur.RPS += ws.RPS
			cur.EgressBytes += ws.EgressBytes
			if ws.Window > cur.Window {
				cur.Window = ws.Window
			}
		}
	}
	out := make([]WindowStats, 0, len(acc))
	for _, ws := range acc {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i].Key, out[j].Key) })
	return out
}
