package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// TraceID identifies one end-to-end request across all services.
type TraceID uint64

// SpanID identifies one service invocation within a trace.
type SpanID uint64

// Span records one endpoint call: which service executed it, in which
// cluster, for which traffic class, and when. SLATE-proxies emit one
// span per proxied request; the global controller reconstructs call
// trees from them to learn per-class call graphs and multi-hop latency
// attribution.
type Span struct {
	Trace   TraceID
	ID      SpanID
	Parent  SpanID // zero for the root span
	Service string
	Cluster string
	Class   string
	Method  string
	Path    string
	Start   time.Duration // since an arbitrary epoch shared by the trace
	End     time.Duration
	// ReqBytes/RespBytes size the messages, for egress accounting.
	ReqBytes, RespBytes int64
	// Remote marks a call that crossed a cluster boundary.
	Remote bool
}

// Latency returns the span's duration.
func (s *Span) Latency() time.Duration { return s.End - s.Start }

// TraceTree is a reconstructed call tree for one trace.
type TraceTree struct {
	Root     *TraceNode
	Orphans  []*TraceNode // spans whose parent was missing
	NumSpans int
}

// TraceNode is one node of a reconstructed call tree.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
}

// Walk visits the node and descendants pre-order.
func (n *TraceNode) Walk(fn func(*TraceNode)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// BuildTree reconstructs the call tree of a single trace from its spans.
// Spans may arrive in any order. Children are ordered by start time.
// The root is the unique span with Parent == 0; if none or several
// exist, an error is returned (the trace is corrupt or partial).
func BuildTree(spans []Span) (*TraceTree, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("telemetry: no spans")
	}
	trace := spans[0].Trace
	nodes := make(map[SpanID]*TraceNode, len(spans))
	for _, s := range spans {
		if s.Trace != trace {
			return nil, fmt.Errorf("telemetry: mixed traces %d and %d", trace, s.Trace)
		}
		if _, dup := nodes[s.ID]; dup {
			return nil, fmt.Errorf("telemetry: duplicate span %d in trace %d", s.ID, trace)
		}
		nodes[s.ID] = &TraceNode{Span: s}
	}
	t := &TraceTree{NumSpans: len(spans)}
	for _, n := range nodes {
		if n.Span.Parent == 0 {
			if t.Root != nil {
				return nil, fmt.Errorf("telemetry: trace %d has multiple roots", trace)
			}
			t.Root = n
			continue
		}
		parent, ok := nodes[n.Span.Parent]
		if !ok {
			t.Orphans = append(t.Orphans, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	if t.Root == nil {
		return nil, fmt.Errorf("telemetry: trace %d has no root span", trace)
	}
	var sortChildren func(*TraceNode)
	sortChildren = func(n *TraceNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			if n.Children[i].Span.Start != n.Children[j].Span.Start {
				return n.Children[i].Span.Start < n.Children[j].Span.Start
			}
			return n.Children[i].Span.ID < n.Children[j].Span.ID
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sortChildren(t.Root)
	sort.SliceStable(t.Orphans, func(i, j int) bool { return t.Orphans[i].Span.ID < t.Orphans[j].Span.ID })
	return t, nil
}

// EgressBytes sums the bytes that crossed cluster boundaries in the
// tree: for each edge where child and parent ran in different clusters,
// the child's request and response bytes.
func (t *TraceTree) EgressBytes() int64 {
	var total int64
	var visit func(n *TraceNode)
	visit = func(n *TraceNode) {
		for _, c := range n.Children {
			if c.Span.Cluster != n.Span.Cluster {
				total += c.Span.ReqBytes + c.Span.RespBytes
			}
			visit(c)
		}
	}
	visit(t.Root)
	return total
}

// CriticalPath returns the sequence of spans on the latency-critical
// path from the root: at each node, the child whose End is latest
// (after CRISP's critical-path analysis, simplified to end-time
// domination).
func (t *TraceTree) CriticalPath() []Span {
	var path []Span
	n := t.Root
	for n != nil {
		path = append(path, n.Span)
		var next *TraceNode
		for _, c := range n.Children {
			if next == nil || c.Span.End > next.Span.End {
				next = c
			}
		}
		n = next
	}
	return path
}
