package telemetry

import "math"

// DeltaReport computes the incremental telemetry upload between two
// window snapshots: changed holds every stat of cur that is new or
// differs from prev beyond the relative epsilon, removed lists keys
// present in prev but absent from cur. The receiver folds changed into
// its per-cluster state map and deletes removed, reconstructing the
// full window without the unchanged keys ever crossing the wire.
func DeltaReport(prev, cur []WindowStats, eps float64) (changed []WindowStats, removed []MetricKey) {
	prevBy := make(map[MetricKey]WindowStats, len(prev))
	for _, ws := range prev {
		prevBy[ws.Key] = ws
	}
	for _, ws := range cur {
		old, ok := prevBy[ws.Key]
		if !ok || !statsWithin(old, ws, eps) {
			changed = append(changed, ws)
		}
		delete(prevBy, ws.Key)
	}
	for _, ws := range prev {
		if _, gone := prevBy[ws.Key]; gone {
			removed = append(removed, ws.Key)
		}
	}
	return changed, removed
}

// statsWithin reports whether two windows for the same key agree within
// the relative epsilon on every numeric field.
func statsWithin(a, b WindowStats, eps float64) bool {
	return within(float64(a.Window), float64(b.Window), eps) &&
		within(float64(a.Requests), float64(b.Requests), eps) &&
		within(a.RPS, b.RPS, eps) &&
		within(float64(a.MeanLatency), float64(b.MeanLatency), eps) &&
		within(float64(a.P50), float64(b.P50), eps) &&
		within(float64(a.P99), float64(b.P99), eps) &&
		within(float64(a.EgressBytes), float64(b.EgressBytes), eps)
}

func within(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
