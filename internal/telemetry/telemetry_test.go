package telemetry

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := DefaultHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	if h.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", h.Mean())
	}
	if h.Max() != 30*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Min() != 10*time.Millisecond {
		t.Errorf("Min = %v", h.Min())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := DefaultHistogram()
	rng := rand.New(rand.NewSource(1))
	var raw []time.Duration
	for i := 0; i < 50000; i++ {
		d := time.Duration(rng.ExpFloat64() * float64(40*time.Millisecond))
		raw = append(raw, d)
		h.Record(d)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := QuantileOf(raw, q)
		got := h.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < -0.06 || rel > 0.06 {
			t.Errorf("q%.2f: histogram %v vs exact %v (rel err %.3f, want within 6%%)", q, got, exact, rel)
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h, err := NewHistogram(time.Millisecond, time.Second, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	h.Record(-5 * time.Millisecond) // clamps to 0 -> lowest bucket
	h.Record(10 * time.Second)      // overflow bucket
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Quantile(1) != 10*time.Second {
		t.Errorf("max quantile = %v, want 10s (tracked exactly)", h.Quantile(1))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, time.Second, 1.5); err == nil {
		t.Error("min=0 should error")
	}
	if _, err := NewHistogram(time.Second, time.Second, 1.5); err == nil {
		t.Error("max=min should error")
	}
	if _, err := NewHistogram(time.Millisecond, time.Second, 1.0); err == nil {
		t.Error("growth=1 should error")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := DefaultHistogram(), DefaultHistogram()
	a.Record(10 * time.Millisecond)
	b.Record(30 * time.Millisecond)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 || a.Mean() != 20*time.Millisecond {
		t.Errorf("merged Count=%d Mean=%v", a.Count(), a.Mean())
	}
	if a.Max() != 30*time.Millisecond || a.Min() != 10*time.Millisecond {
		t.Errorf("merged Max=%v Min=%v", a.Max(), a.Min())
	}
	c, _ := NewHistogram(time.Millisecond, time.Second, 1.5)
	if err := a.Merge(c); err == nil {
		t.Error("merging different shapes should error")
	}
}

func TestHistogramReset(t *testing.T) {
	h := DefaultHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || len(h.CDF()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := DefaultHistogram()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Intn(int(time.Second))))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	prevF := 0.0
	prevL := time.Duration(-1)
	for _, p := range cdf {
		if p.Fraction < prevF {
			t.Fatal("CDF fractions not nondecreasing")
		}
		if p.Latency <= prevL {
			t.Fatal("CDF latencies not increasing")
		}
		prevF, prevL = p.Fraction, p.Latency
	}
	if last := cdf[len(cdf)-1].Fraction; !almostEqual(last, 1.0) {
		t.Errorf("CDF should end at 1.0, got %v", last)
	}
}

func TestCDFOfExact(t *testing.T) {
	samples := []time.Duration{30, 10, 20, 20}
	cdf := CDFOf(samples)
	want := []CDFPoint{{10, 0.25}, {20, 0.75}, {30, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF = %v, want %v", cdf, want)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if CDFOf(nil) != nil {
		t.Error("empty CDFOf should be nil")
	}
}

func TestQuantileOfAndMeanOf(t *testing.T) {
	s := []time.Duration{40, 10, 30, 20}
	if q := QuantileOf(s, 0.5); q != 20 {
		t.Errorf("median = %v, want 20", q)
	}
	if q := QuantileOf(s, 0); q != 10 {
		t.Errorf("q0 = %v, want 10", q)
	}
	if q := QuantileOf(s, 1); q != 40 {
		t.Errorf("q1 = %v, want 40", q)
	}
	if m := MeanOf(s); m != 25 {
		t.Errorf("mean = %v, want 25", m)
	}
	if QuantileOf(nil, 0.5) != 0 || MeanOf(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
}

func TestQuantileOfDoesNotMutate(t *testing.T) {
	s := []time.Duration{3, 1, 2}
	QuantileOf(s, 0.5)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Error("QuantileOf mutated its input")
	}
}

func TestBuildTree(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 2, Parent: 1, Service: "mp", Cluster: "west", Start: 10, End: 90},
		{Trace: 1, ID: 1, Parent: 0, Service: "fr", Cluster: "west", Start: 0, End: 100},
		{Trace: 1, ID: 3, Parent: 2, Service: "db", Cluster: "east", Start: 20, End: 80,
			ReqBytes: 2048, RespBytes: 1000000},
	}
	tree, err := BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Span.Service != "fr" {
		t.Errorf("root = %q, want fr", tree.Root.Span.Service)
	}
	if tree.NumSpans != 3 {
		t.Errorf("NumSpans = %d", tree.NumSpans)
	}
	mp := tree.Root.Children[0]
	if mp.Span.Service != "mp" || mp.Children[0].Span.Service != "db" {
		t.Error("tree structure wrong")
	}
	// Egress: only mp(west)->db(east) crosses clusters.
	if got := tree.EgressBytes(); got != 2048+1000000 {
		t.Errorf("EgressBytes = %d, want %d", got, 2048+1000000)
	}
	cp := tree.CriticalPath()
	if len(cp) != 3 || cp[0].Service != "fr" || cp[2].Service != "db" {
		t.Errorf("CriticalPath = %v", cp)
	}
}

func TestBuildTreeChildOrdering(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 1, Parent: 0, Service: "root", Start: 0, End: 100},
		{Trace: 1, ID: 3, Parent: 1, Service: "b", Start: 50, End: 60},
		{Trace: 1, ID: 2, Parent: 1, Service: "a", Start: 10, End: 20},
	}
	tree, err := BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Children[0].Span.Service != "a" || tree.Root.Children[1].Span.Service != "b" {
		t.Error("children not ordered by start time")
	}
}

func TestBuildTreeErrors(t *testing.T) {
	if _, err := BuildTree(nil); err == nil {
		t.Error("no spans should error")
	}
	if _, err := BuildTree([]Span{{Trace: 1, ID: 1, Parent: 5}}); err == nil {
		t.Error("no root should error")
	}
	if _, err := BuildTree([]Span{
		{Trace: 1, ID: 1, Parent: 0},
		{Trace: 1, ID: 2, Parent: 0},
	}); err == nil {
		t.Error("two roots should error")
	}
	if _, err := BuildTree([]Span{
		{Trace: 1, ID: 1, Parent: 0},
		{Trace: 2, ID: 2, Parent: 1},
	}); err == nil {
		t.Error("mixed traces should error")
	}
	if _, err := BuildTree([]Span{
		{Trace: 1, ID: 1, Parent: 0},
		{Trace: 1, ID: 1, Parent: 0},
	}); err == nil {
		t.Error("duplicate span IDs should error")
	}
}

func TestBuildTreeOrphans(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 1, Parent: 0, Service: "root"},
		{Trace: 1, ID: 9, Parent: 7, Service: "lost"}, // parent 7 missing
	}
	tree, err := BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Orphans) != 1 || tree.Orphans[0].Span.Service != "lost" {
		t.Errorf("Orphans = %v", tree.Orphans)
	}
}

func TestAggregatorFlush(t *testing.T) {
	a := NewAggregator()
	k1 := MetricKey{Service: "svc", Class: "L", Cluster: "west"}
	k2 := MetricKey{Service: "svc", Class: "H", Cluster: "west"}
	for i := 0; i < 10; i++ {
		a.Record(k1, 10*time.Millisecond, 100)
	}
	a.Record(k2, 50*time.Millisecond, 0)
	stats := a.Flush(2 * time.Second)
	if len(stats) != 2 {
		t.Fatalf("stats = %d entries, want 2", len(stats))
	}
	// Sorted order: class H before L.
	if stats[0].Key != k2 || stats[1].Key != k1 {
		t.Fatalf("order = %v", stats)
	}
	if stats[1].Requests != 10 || !almostEqual(stats[1].RPS, 5) {
		t.Errorf("k1 stats = %+v, want 10 reqs, 5 rps", stats[1])
	}
	if stats[1].EgressBytes != 1000 {
		t.Errorf("egress = %d, want 1000", stats[1].EgressBytes)
	}
	if stats[1].MeanLatency != 10*time.Millisecond {
		t.Errorf("mean = %v", stats[1].MeanLatency)
	}
	// Second flush is empty.
	if again := a.Flush(time.Second); len(again) != 0 {
		t.Errorf("second flush = %v, want empty", again)
	}
}

func TestAggregatorConcurrent(t *testing.T) {
	a := NewAggregator()
	k := MetricKey{Service: "s", Class: "c", Cluster: "x"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Record(k, time.Millisecond, 1)
			}
		}()
	}
	wg.Wait()
	stats := a.Flush(time.Second)
	if len(stats) != 1 || stats[0].Requests != 8000 || stats[0].EgressBytes != 8000 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMergeWeightsMeans(t *testing.T) {
	k := MetricKey{Service: "s", Class: "c", Cluster: "x"}
	g1 := []WindowStats{{Key: k, Window: time.Second, Requests: 10, RPS: 10, MeanLatency: 10 * time.Millisecond, P99: 20 * time.Millisecond, EgressBytes: 5}}
	g2 := []WindowStats{{Key: k, Window: time.Second, Requests: 30, RPS: 30, MeanLatency: 30 * time.Millisecond, P99: 90 * time.Millisecond, EgressBytes: 7}}
	out := Merge(g1, g2)
	if len(out) != 1 {
		t.Fatalf("merge = %d entries", len(out))
	}
	ws := out[0]
	if ws.Requests != 40 || !almostEqual(ws.RPS, 40) || ws.EgressBytes != 12 {
		t.Errorf("merged = %+v", ws)
	}
	// Weighted mean: (10*10 + 30*30)/40 = 25ms.
	if ws.MeanLatency != 25*time.Millisecond {
		t.Errorf("mean = %v, want 25ms", ws.MeanLatency)
	}
	if ws.P99 != 90*time.Millisecond {
		t.Errorf("p99 = %v, want max 90ms", ws.P99)
	}
}

func TestMergeDisjointKeys(t *testing.T) {
	a := MetricKey{Service: "a"}
	b := MetricKey{Service: "b"}
	out := Merge(
		[]WindowStats{{Key: b, Requests: 1}},
		[]WindowStats{{Key: a, Requests: 2}},
	)
	if len(out) != 2 || out[0].Key != a || out[1].Key != b {
		t.Errorf("merge = %v", out)
	}
}

func TestHistogramQuantilePropertyBounds(t *testing.T) {
	// Property: quantile is between min and max and monotone in q.
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := DefaultHistogram()
		for _, v := range vals {
			h.Record(time.Duration(v) % (10 * time.Second))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			x := h.Quantile(q)
			if x < prev || x < h.Min() || x > h.Max() {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergePreservesRequestCountsProperty(t *testing.T) {
	// Property: merging any grouping of windows preserves total request
	// counts and egress bytes per key.
	f := func(counts []uint8) bool {
		keys := []MetricKey{
			{Service: "a", Class: "x", Cluster: "w"},
			{Service: "b", Class: "y", Cluster: "e"},
		}
		var groups [][]WindowStats
		want := map[MetricKey]uint64{}
		for i, c := range counts {
			k := keys[i%2]
			ws := WindowStats{Key: k, Requests: uint64(c), RPS: float64(c), EgressBytes: int64(c)}
			groups = append(groups, []WindowStats{ws})
			want[k] += uint64(c)
		}
		merged := Merge(groups...)
		got := map[MetricKey]uint64{}
		var gotEgress int64
		for _, ws := range merged {
			got[ws.Key] += ws.Requests
			gotEgress += ws.EgressBytes
		}
		var wantEgress int64
		for _, v := range want {
			wantEgress += int64(v)
		}
		if gotEgress != wantEgress {
			return false
		}
		for k, v := range want {
			if v > 0 && got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
