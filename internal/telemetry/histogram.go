// Package telemetry provides the observability substrate SLATE's control
// plane consumes: per-request records and spans, call-tree
// reconstruction, streaming latency histograms, and windowed
// per-(service, class, cluster) aggregation (paper §3.1: the SLATE-proxy
// "monitors and reports telemetry in each microservice replica...
// including the load on the service, request specific information,
// latency, trace information, and request traffic classes").
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a streaming latency histogram with logarithmically spaced
// buckets, in the spirit of HDR histograms: constant memory, bounded
// relative quantile error. The zero value is not usable; construct with
// NewHistogram. Not safe for concurrent use; callers own locking.
type Histogram struct {
	min, max time.Duration
	growth   float64
	bounds   []time.Duration // upper bound of each bucket
	counts   []uint64
	n        uint64
	sum      time.Duration
	maxSeen  time.Duration
	minSeen  time.Duration
}

// NewHistogram returns a histogram covering [min, max] with bucket
// boundaries growing by the given factor (> 1). Values outside the range
// are clamped into the edge buckets. A growth of 1.05 yields ~5%
// relative quantile error.
func NewHistogram(min, max time.Duration, growth float64) (*Histogram, error) {
	if min <= 0 || max <= min {
		return nil, fmt.Errorf("telemetry: invalid histogram range [%v, %v]", min, max)
	}
	if growth <= 1 {
		return nil, fmt.Errorf("telemetry: growth factor must exceed 1, got %v", growth)
	}
	h := &Histogram{min: min, max: max, growth: growth, minSeen: math.MaxInt64}
	for b := float64(min); b < float64(max); b *= growth {
		h.bounds = append(h.bounds, time.Duration(b))
	}
	h.bounds = append(h.bounds, max)
	h.counts = make([]uint64, len(h.bounds)+1) // +1 overflow bucket
	return h, nil
}

// DefaultHistogram covers 10µs to 100s with ~5% resolution — suitable
// for request latencies.
func DefaultHistogram() *Histogram {
	h, err := NewHistogram(10*time.Microsecond, 100*time.Second, 1.05)
	if err != nil {
		panic(err)
	}
	return h
}

// Record adds one observation.
//
//slate:hot
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[idx]++
	h.n++
	h.sum += d
	if d > h.maxSeen {
		h.maxSeen = d
	}
	if d < h.minSeen {
		h.minSeen = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean of recorded values (tracked outside the
// buckets, so it has no quantization error).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Max returns the largest recorded value.
func (h *Histogram) Max() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.maxSeen
}

// Min returns the smallest recorded value.
func (h *Histogram) Min() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.minSeen
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with relative error
// bounded by the growth factor. q outside [0,1] is clamped.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.minSeen
	}
	if q >= 1 {
		return h.maxSeen
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i >= len(h.bounds) {
				return h.maxSeen
			}
			// Clamp the bucket bound to the observed range so quantiles
			// never fall outside [Min, Max].
			b := h.bounds[i]
			if b > h.maxSeen {
				b = h.maxSeen
			}
			if b < h.minSeen {
				b = h.minSeen
			}
			return b
		}
	}
	return h.maxSeen
}

// Merge adds other's observations into h. The histograms must have been
// created with identical parameters.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.counts) != len(other.counts) || h.min != other.min || h.max != other.max || h.growth != other.growth { //slate:nolint floatcmp -- construction parameters are copied verbatim, never computed
		return fmt.Errorf("telemetry: merging histograms with different shapes")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.maxSeen > h.maxSeen {
			h.maxSeen = other.maxSeen
		}
		if other.minSeen < h.minSeen {
			h.minSeen = other.minSeen
		}
	}
	return nil
}

// Reset clears all observations, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.maxSeen = 0, 0, 0
	h.minSeen = math.MaxInt64
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64 // P(X <= Latency)
}

// CDF returns the empirical CDF of the histogram at each non-empty
// bucket boundary.
func (h *Histogram) CDF() []CDFPoint {
	if h.n == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		lat := h.maxSeen
		if i < len(h.bounds) {
			lat = h.bounds[i]
		}
		out = append(out, CDFPoint{Latency: lat, Fraction: float64(cum) / float64(h.n)})
	}
	return out
}

// CDFOf computes an exact empirical CDF from raw samples (sorted copy),
// used for small result sets where exactness beats constant memory.
func CDFOf(samples []time.Duration) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]CDFPoint, 0, len(s))
	n := float64(len(s))
	for i, v := range s {
		// Collapse runs of equal values to the last index.
		if i+1 < len(s) && s[i+1] == v {
			continue
		}
		out = append(out, CDFPoint{Latency: v, Fraction: float64(i+1) / n})
	}
	return out
}

// QuantileOf returns the exact q-quantile of raw samples.
func QuantileOf(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// MeanOf returns the mean of raw samples.
func MeanOf(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range samples {
		sum += v
	}
	return sum / time.Duration(len(samples))
}
