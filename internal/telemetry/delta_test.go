package telemetry

import (
	"testing"
	"time"
)

func dws(svc string, rps float64) WindowStats {
	return WindowStats{
		Key:         MetricKey{Service: svc, Class: "d", Cluster: "west"},
		Window:      time.Second,
		Requests:    uint64(rps),
		RPS:         rps,
		MeanLatency: 20 * time.Millisecond,
	}
}

func TestDeltaReportChangesOnly(t *testing.T) {
	prev := []WindowStats{dws("a", 100), dws("b", 200), dws("c", 300)}
	cur := []WindowStats{dws("a", 100), dws("b", 250), dws("d", 50)}

	changed, removed := DeltaReport(prev, cur, 1e-9)
	if len(changed) != 2 {
		t.Fatalf("changed = %d entries (%v), want 2 (b and d)", len(changed), changed)
	}
	names := map[string]bool{}
	for _, ws := range changed {
		names[ws.Key.Service] = true
	}
	if !names["b"] || !names["d"] {
		t.Errorf("changed keys = %v, want b and d", names)
	}
	if len(removed) != 1 || removed[0].Service != "c" {
		t.Errorf("removed = %v, want [c]", removed)
	}
}

func TestDeltaReportEpsilon(t *testing.T) {
	prev := []WindowStats{dws("a", 100)}
	// A sub-epsilon wiggle is "unchanged"; above it is not.
	cur := []WindowStats{dws("a", 100*(1+1e-12))}
	if changed, removed := DeltaReport(prev, cur, 1e-9); len(changed) != 0 || len(removed) != 0 {
		t.Errorf("sub-epsilon change reported: %v %v", changed, removed)
	}
	cur = []WindowStats{dws("a", 101)}
	if changed, _ := DeltaReport(prev, cur, 1e-9); len(changed) != 1 {
		t.Errorf("real change not reported")
	}
}

func TestDeltaReportReconstruction(t *testing.T) {
	// Folding deltas into a state map must reconstruct the full window.
	prev := []WindowStats{dws("a", 100), dws("b", 200)}
	cur := []WindowStats{dws("a", 150), dws("c", 10)}
	changed, removed := DeltaReport(prev, cur, 1e-9)

	state := map[MetricKey]WindowStats{}
	for _, ws := range prev {
		state[ws.Key] = ws
	}
	for _, ws := range changed {
		state[ws.Key] = ws
	}
	for _, k := range removed {
		delete(state, k)
	}
	if len(state) != len(cur) {
		t.Fatalf("reconstructed %d keys, want %d", len(state), len(cur))
	}
	for _, ws := range cur {
		if got, ok := state[ws.Key]; !ok || got.RPS != ws.RPS { //slate:nolint floatcmp -- copied verbatim, not computed
			t.Errorf("key %v reconstructed as %+v, want %+v", ws.Key, got, ws)
		}
	}
}

func TestDeltaReportEmptyPrevIsFull(t *testing.T) {
	cur := []WindowStats{dws("a", 100), dws("b", 200)}
	changed, removed := DeltaReport(nil, cur, 1e-9)
	if len(changed) != 2 || len(removed) != 0 {
		t.Errorf("first report: changed=%d removed=%d, want 2/0", len(changed), len(removed))
	}
}
