package lp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Solver runs the simplex with reusable scratch buffers: the tableau is
// carved out of one flat backing array that persists across solves, so a
// control loop re-solving every tick performs no per-solve tableau
// allocation once the scratch has grown to the problem's size. A Solver
// may be reused across models of different shapes (scratch tracks the
// high-water mark) but is not safe for concurrent use; create one Solver
// per goroutine.
type Solver struct {
	flat  []float64   // tableau backing array
	rowp  [][]float64 // row views into flat
	basis []int
	seen  []bool // warm-start basis validation scratch (per column)
	done  []bool // warm-start row-installed scratch (per row)
	nz    []int  // pivot-row nonzero column indices scratch
}

// NewSolver returns a Solver with empty scratch.
func NewSolver() *Solver { return &Solver{} }

// Solve minimizes the model from a cold start (phase 1 to find a
// feasible vertex, then phase 2). The returned Solution records the
// optimal basis, which a later call can hand to SolveFrom to warm-start
// a nearby problem.
func (s *Solver) Solve(m *Model) (*Solution, error) {
	t, err := s.newTableau(m)
	if err != nil {
		return nil, err
	}
	return t.solve(m)
}

// SolveFrom minimizes the model starting from a previously optimal
// basis (as recorded in Solution.Basis). When the basis still fits the
// model's shape and remains primal-feasible under the current
// right-hand side — the steady-state case for a control loop whose
// demand drifts between ticks — phase 1 is skipped entirely and phase 2
// re-optimizes in a handful of pivots. Otherwise SolveFrom transparently
// falls back to a cold Solve; the only error callers see beyond Solve's
// is ErrIterLimit, and only when both the warm and cold paths exceed the
// pivot budget.
//
// A nil or empty basis is an explicit cold start.
func (s *Solver) SolveFrom(m *Model, basis []int) (*Solution, error) {
	if len(basis) == 0 {
		return s.Solve(m)
	}
	t, err := s.newTableau(m)
	if err != nil {
		return nil, err
	}
	if t.warmStart(basis) {
		sol, err := t.finishPhase2(m)
		if err == nil {
			sol.Warm = true
			return sol, nil
		}
		if !errors.Is(err, ErrIterLimit) {
			return nil, err
		}
		// Warm pivots exhausted the budget (cycling from a bad start);
		// the cold path may still converge.
	}
	t, err = s.newTableau(m)
	if err != nil {
		return nil, err
	}
	return t.solve(m)
}

// growTableau returns rows zeroed row views of width elements each,
// backed by the solver's flat scratch.
func (s *Solver) growTableau(rows, width int) [][]float64 {
	need := rows * width
	if cap(s.flat) < need {
		s.flat = make([]float64, need)
	} else {
		s.flat = s.flat[:need]
		clear(s.flat)
	}
	if cap(s.rowp) < rows {
		s.rowp = make([][]float64, rows)
	}
	s.rowp = s.rowp[:rows]
	for i := range s.rowp {
		s.rowp[i] = s.flat[i*width : (i+1)*width : (i+1)*width]
	}
	if cap(s.nz) < width {
		s.nz = make([]int, 0, width)
	}
	return s.rowp
}

// growBasis returns a basis slice of length rows; every entry is
// assigned during tableau construction, so no clearing is needed.
func (s *Solver) growBasis(rows int) []int {
	if cap(s.basis) < rows {
		s.basis = make([]int, rows)
	}
	s.basis = s.basis[:rows]
	return s.basis
}

// growSeen returns a zeroed bool slice of length cols.
func (s *Solver) growSeen(cols int) []bool {
	if cap(s.seen) < cols {
		s.seen = make([]bool, cols)
	} else {
		s.seen = s.seen[:cols]
		clear(s.seen)
	}
	return s.seen
}

// growDone returns a zeroed bool slice of length rows.
func (s *Solver) growDone(rows int) []bool {
	if cap(s.done) < rows {
		s.done = make([]bool, rows)
	} else {
		s.done = s.done[:rows]
		clear(s.done)
	}
	return s.done
}

// SetRHS replaces the right-hand side of constraint i (in AddConstraint
// order). Together with SetCoef and SetObj this lets a control loop
// mutate a cached model between ticks instead of rebuilding it.
func (m *Model) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(m.cons) {
		return fmt.Errorf("lp: SetRHS: constraint index %d out of range [0,%d)", i, len(m.cons))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: SetRHS: constraint %q given non-finite rhs %v", m.cons[i].name, rhs)
	}
	m.cons[i].rhs = rhs
	return nil
}

// SetCoef replaces variable v's coefficient in constraint i (in
// AddConstraint order). Setting a coefficient the constraint does not
// yet mention inserts a term; setting an absent coefficient to zero is a
// no-op.
func (m *Model) SetCoef(i int, v Var, coef float64) error {
	if i < 0 || i >= len(m.cons) {
		return fmt.Errorf("lp: SetCoef: constraint index %d out of range [0,%d)", i, len(m.cons))
	}
	if int(v) < 0 || int(v) >= len(m.vars) {
		return fmt.Errorf("lp: SetCoef: constraint %q references unknown variable %d", m.cons[i].name, v)
	}
	if math.IsNaN(coef) || math.IsInf(coef, 0) {
		return fmt.Errorf("lp: SetCoef: constraint %q given non-finite coefficient %v for %s", m.cons[i].name, coef, m.vars[v].name)
	}
	terms := m.cons[i].terms
	j := sort.Search(len(terms), func(k int) bool { return terms[k].Var >= v })
	if j < len(terms) && terms[j].Var == v {
		terms[j].Coef = coef
		return nil
	}
	if coef == 0 { //slate:nolint floatcmp -- sparsity: absent zero terms stay absent
		return nil
	}
	terms = append(terms, Term{})
	copy(terms[j+1:], terms[j:])
	terms[j] = Term{Var: v, Coef: coef}
	m.cons[i].terms = terms
	return nil
}
