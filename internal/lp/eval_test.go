package lp

import (
	"math"
	"strings"
	"testing"
)

// evalModel builds min x0 + 2·x1 s.t. x0 + x1 = 10, x0 ≤ 6, x1 ≤ 8.
func evalModel(t *testing.T) (*Model, Var, Var) {
	t.Helper()
	m := NewModel()
	a := m.AddVar("a", 1)
	b := m.AddVar("b", 2)
	m.SetUpper(a, 6)
	m.SetUpper(b, 8)
	m.MustConstraint("sum", []Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, EQ, 10)
	return m, a, b
}

func TestEvalObjective(t *testing.T) {
	m, _, _ := evalModel(t)
	if got := m.EvalObjective([]float64{6, 4}); got != 14 { //slate:nolint floatcmp -- small-integer arithmetic is exact in float64
		t.Fatalf("EvalObjective = %v, want 14", got)
	}
	// Extra trailing entries are ignored.
	if got := m.EvalObjective([]float64{6, 4, 99}); got != 14 { //slate:nolint floatcmp -- small-integer arithmetic is exact in float64
		t.Fatalf("EvalObjective with extra entries = %v, want 14", got)
	}
}

func TestEvalObjectiveMatchesSolver(t *testing.T) {
	m, _, _ := evalModel(t)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if got := m.EvalObjective(sol.X); math.Abs(got-sol.Objective) > 1e-9 {
		t.Fatalf("EvalObjective(optimal X) = %v, solver objective %v", got, sol.Objective)
	}
}

func TestCheckFeasible(t *testing.T) {
	m, _, _ := evalModel(t)

	cases := []struct {
		name    string
		x       []float64
		wantErr string // "" means feasible
	}{
		{"optimal-vertex", []float64{6, 4}, ""},
		{"interior-split", []float64{5, 5}, ""},
		{"tiny-residual", []float64{6, 4 + 1e-9}, ""},
		{"short-vector", []float64{6}, "2 variables"},
		{"negative", []float64{-1, 11}, "x >= 0"},
		{"over-upper", []float64{7, 3}, "upper bound"},
		{"broken-sum", []float64{3, 3}, "constraint sum"},
		{"nan", []float64{math.NaN(), 4}, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := m.CheckFeasible(tc.x, 1e-6)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckFeasible = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckFeasible = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestCheckFeasibleRelations(t *testing.T) {
	m := NewModel()
	a := m.AddVar("a", 0)
	m.MustConstraint("le", []Term{{Var: a, Coef: 1}}, LE, 5)
	m.MustConstraint("ge", []Term{{Var: a, Coef: 1}}, GE, 2)
	if err := m.CheckFeasible([]float64{3}, 1e-9); err != nil {
		t.Fatalf("3 should satisfy 2 <= a <= 5: %v", err)
	}
	if err := m.CheckFeasible([]float64{6}, 1e-9); err == nil {
		t.Fatal("6 should violate a <= 5")
	}
	if err := m.CheckFeasible([]float64{1}, 1e-9); err == nil {
		t.Fatal("1 should violate a >= 2")
	}
}

// TestCheckFeasibleRelativeTolerance: a badly scaled row (coefficients
// ~1e9) must not reject a solution whose absolute residual is large but
// relative residual is tiny.
func TestCheckFeasibleRelativeTolerance(t *testing.T) {
	m := NewModel()
	a := m.AddVar("a", 0)
	m.MustConstraint("big", []Term{{Var: a, Coef: 1e9}}, EQ, 1e9)
	// 1 + 1e-9 → residual 1.0 in absolute terms, 1e-9 relative.
	if err := m.CheckFeasible([]float64{1 + 1e-9}, 1e-6); err != nil {
		t.Fatalf("relative tolerance should accept: %v", err)
	}
	if err := m.CheckFeasible([]float64{1.01}, 1e-6); err == nil {
		t.Fatal("1% violation on the big row should be rejected")
	}
}

// TestCheckFeasibleSolverSolutions: every optimal solve of a random-ish
// family of transportation problems passes its own feasibility check.
func TestCheckFeasibleSolverSolutions(t *testing.T) {
	for n := 2; n <= 6; n++ {
		m := NewModel()
		vars := make([][]Var, n)
		for i := range vars {
			vars[i] = make([]Var, n)
			for j := range vars[i] {
				vars[i][j] = m.AddVar("x", float64((i*7+j*13)%10+1))
			}
		}
		for i := 0; i < n; i++ {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{Var: vars[i][j], Coef: 1}
			}
			m.MustConstraint("s", terms, EQ, 10)
		}
		for j := 0; j < n; j++ {
			terms := make([]Term, n)
			for i := 0; i < n; i++ {
				terms[i] = Term{Var: vars[i][j], Coef: 1}
			}
			m.MustConstraint("d", terms, EQ, 10)
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("n=%d: status %v", n, sol.Status)
		}
		if err := m.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("n=%d: optimal solution rejected: %v", n, err)
		}
		if got := m.EvalObjective(sol.X); math.Abs(got-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("n=%d: EvalObjective %v vs solver %v", n, got, sol.Objective)
		}
	}
}
