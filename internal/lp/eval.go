package lp

import (
	"fmt"
	"math"
)

// EvalObjective returns the objective value c·x of an externally
// produced assignment, indexed by Var. It is the authoritative score for
// solutions that did not come out of the simplex — e.g. a routing table
// proposed by the local-search optimizer — so that candidates from
// different solvers are compared under the exact same objective. x must
// have at least NumVars entries; extra entries are ignored.
func (m *Model) EvalObjective(x []float64) float64 {
	var obj float64
	for i := range m.vars {
		if c := m.vars[i].obj; c != 0 { //slate:nolint floatcmp -- sparsity: skip structurally-zero objective entries
			obj += c * x[i]
		}
	}
	return obj
}

// CheckFeasible verifies that x satisfies every constraint, variable
// bound, and the x ≥ 0 domain of the model, within a relative tolerance:
// a row residual |Σ a·x − rhs| (or one-sided slack violation) is
// accepted up to tol·(1 + Σ|a·x|), and a bound violation up to
// tol·(1 + |bound|), so well-scaled and badly-scaled rows are judged
// alike. tol ≤ 0 uses 1e-6. It returns nil when feasible and a
// descriptive error naming the first violated row or bound otherwise.
//
// This is the gate an external solver's solution must pass before the
// control plane will publish it: a locally-searched routing table that
// loses flow or overfills a PWL capacity segment fails here and the
// caller falls back to the simplex.
func (m *Model) CheckFeasible(x []float64, tol float64) error {
	if tol <= 0 {
		tol = 1e-6
	}
	if len(x) < len(m.vars) {
		return fmt.Errorf("lp: assignment has %d values for %d variables", len(x), len(m.vars))
	}
	for i := range m.vars {
		v := x[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: variable %s has non-finite value %v", m.vars[i].name, v)
		}
		if v < -tol {
			return fmt.Errorf("lp: variable %s = %v violates x >= 0", m.vars[i].name, v)
		}
		if hi := m.vars[i].upper; v > hi+tol*(1+math.Abs(hi)) {
			return fmt.Errorf("lp: variable %s = %v exceeds upper bound %v", m.vars[i].name, v, hi)
		}
	}
	for ci := range m.cons {
		con := &m.cons[ci]
		var sum, scale float64
		for _, t := range con.terms {
			p := t.Coef * x[t.Var]
			sum += p
			scale += math.Abs(p)
		}
		slack := tol * (1 + scale)
		switch con.rel {
		case LE:
			if sum > con.rhs+slack {
				return fmt.Errorf("lp: constraint %s violated: %v > %v", con.name, sum, con.rhs)
			}
		case GE:
			if sum < con.rhs-slack {
				return fmt.Errorf("lp: constraint %s violated: %v < %v", con.name, sum, con.rhs)
			}
		case EQ:
			if math.Abs(sum-con.rhs) > slack {
				return fmt.Errorf("lp: constraint %s violated: %v != %v", con.name, sum, con.rhs)
			}
		}
	}
	return nil
}
