package lp

import (
	"fmt"
	"math"
)

// Numerical tolerances for the simplex. eps classifies reduced costs and
// residuals as zero; pivotEps rejects pivots too small to divide by
// safely; warmPivotEps is the (stricter) threshold a warm-start replay
// pivot must clear — a marginal pivot there means the cached basis has
// drifted close to singular and a cold solve is safer.
const (
	eps          = 1e-9
	pivotEps     = 1e-10
	warmPivotEps = 1e-7
)

// ErrIterLimit reports that the simplex exceeded its iteration budget
// without converging (a cycling or pathological instance). Callers that
// re-solve periodically (the control loop) should treat it as transient:
// keep the previous plan and retry next tick. Test with errors.Is.
var ErrIterLimit = fmt.Errorf("lp: simplex iteration limit exceeded")

// Solve minimizes the model's objective over its constraints using a
// two-phase primal simplex with Bland's anti-cycling rule engaged after
// a degenerate stretch. Upper bounds registered with SetUpper are
// expanded into explicit constraints. Integer marks are ignored (this is
// the continuous relaxation); use SolveMILP to enforce them.
//
// Solve allocates fresh scratch per call; a re-solving control loop
// should hold a Solver and use its Solve/SolveFrom instead.
func (m *Model) Solve() (*Solution, error) {
	return NewSolver().Solve(m)
}

// tableau is the standard-form simplex tableau:
//
//	rows 0..m-1:  A | b   (b ≥ 0)
//	row  m:       phase-2 objective (original costs)
//	row  m+1:     phase-1 objective (artificial costs), dropped after phase 1
//
// Columns: n structural vars, then slack/surplus, then artificials, then
// the rhs column. Rows are stored densely (slices into the Solver's flat
// scratch) but pivots are sparsity-aware: the pivot row's nonzero column
// indices are collected once per pivot and eliminations touch only those
// columns, so a pivot costs O(cols + rows·nnz(pivot row)) instead of
// O(rows·cols). SLATE's flow LPs have ~4 nonzeros per constraint row, so
// this is the difference between quadratic and near-linear pivots until
// fill-in accumulates (and degrades gracefully to dense cost when it
// does).
type tableau struct {
	a       [][]float64
	rows    int // constraint rows
	cols    int // total columns excluding rhs
	n       int // structural variables
	basis   []int
	artBase int     // first artificial column; artificials are [artBase, cols)
	s       *Solver // owner of the scratch buffers
}

func (s *Solver) newTableau(m *Model) (*tableau, error) {
	n := len(m.vars)
	// Count rows and extra columns: explicit constraints, then upper
	// bounds expanded into LE rows (their rhs is validated ≥ 0, so they
	// never flip).
	nRows := len(m.cons)
	nSlack, nArt := 0, 0
	for _, c := range m.cons {
		rel := c.rel
		if c.rhs < 0 { // normalization flips the relation
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	for _, v := range m.vars {
		if !math.IsInf(v.upper, 1) {
			if v.upper < 0 {
				return nil, fmt.Errorf("lp: variable %s has negative upper bound %v", v.name, v.upper)
			}
			nRows++
			nSlack++
		}
	}
	cols := n + nSlack + nArt
	t := &tableau{
		rows:    nRows,
		n:       n,
		cols:    cols,
		artBase: n + nSlack,
		s:       s,
	}
	t.a = s.growTableau(nRows+2, cols+1)
	t.basis = s.growBasis(nRows)

	slackCol, artCol := n, t.artBase
	row := 0
	place := func(rel Rel) {
		switch rel {
		case LE:
			t.a[row][slackCol] = 1
			t.basis[row] = slackCol
			slackCol++
		case GE:
			t.a[row][slackCol] = -1
			slackCol++
			t.a[row][artCol] = 1
			t.basis[row] = artCol
			artCol++
		case EQ:
			t.a[row][artCol] = 1
			t.basis[row] = artCol
			artCol++
		}
		row++
	}
	for _, c := range m.cons {
		sign := 1.0
		rel := c.rel
		if c.rhs < 0 {
			sign = -1
			rel = flip(rel)
		}
		for _, term := range c.terms {
			t.a[row][term.Var] = sign * term.Coef
		}
		t.a[row][cols] = sign * c.rhs
		place(rel)
	}
	for j, v := range m.vars {
		if !math.IsInf(v.upper, 1) {
			t.a[row][j] = 1
			t.a[row][cols] = v.upper
			place(LE)
		}
	}
	// Phase-2 objective row: original costs (minimization).
	for j, v := range m.vars {
		t.a[nRows][j] = v.obj
	}
	// Phase-1 objective row: sum of artificials.
	for j := t.artBase; j < cols; j++ {
		t.a[nRows+1][j] = 1
	}
	return t, nil
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// solve runs both phases from the all-slack/artificial start.
func (t *tableau) solve(m *Model) (*Solution, error) {
	objRow1 := t.rows + 1 // phase-1 row

	// Price out the initial basis from the phase-1 row (artificials have
	// cost 1 and are basic).
	for i := 0; i < t.rows; i++ {
		if t.basis[i] >= t.artBase {
			addRow(t.a[objRow1], t.a[i], -1)
		}
	}
	if t.hasArtificials() {
		if err := t.iterate(objRow1, true); err != nil {
			return nil, err
		}
		if t.a[objRow1][t.cols] < -eps {
			// Phase-1 optimum > 0 (the row stores the negated objective).
			return &Solution{Status: Infeasible}, nil
		}
		t.driveOutArtificials()
	}
	return t.finishPhase2(m)
}

// finishPhase2 prices out the phase-2 row for the current (feasible)
// basis, runs phase-2 pivots, and extracts the solution.
func (t *tableau) finishPhase2(m *Model) (*Solution, error) {
	objRow2 := t.rows
	for i := 0; i < t.rows; i++ {
		b := t.basis[i]
		if c := t.a[objRow2][b]; c != 0 { //slate:nolint floatcmp -- pivot elimination skips exact zeros only
			addRow(t.a[objRow2], t.a[i], -c)
		}
	}
	if err := t.iterate(objRow2, false); err != nil {
		if err == errUnbounded {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	sol := &Solution{
		Status: Optimal,
		X:      make([]float64, t.n),
		Basis:  append([]int(nil), t.basis...),
	}
	for i, b := range t.basis {
		if b < t.n {
			sol.X[b] = t.a[i][t.cols]
		}
	}
	var obj float64
	for j, v := range m.vars {
		obj += v.obj * sol.X[j]
	}
	sol.Objective = obj
	return sol, nil
}

// warmStart tries to install a previously optimal basis by pivoting each
// row onto its assigned column. It reports false — leaving the caller to
// re-solve cold — when the basis does not fit this tableau's shape, the
// basis matrix is (near-)singular, or the basis is not primal-feasible
// for the current right-hand side. On success the tableau is at a
// primal-feasible vertex and phase 1 can be skipped entirely.
func (t *tableau) warmStart(basis []int) bool {
	if len(basis) != t.rows {
		return false
	}
	seen := t.s.growSeen(t.cols)
	for _, b := range basis {
		if b < 0 || b >= t.cols || seen[b] {
			return false
		}
		seen[b] = true
	}
	// Install the basis as a SET, not under its recorded row pairing:
	// after pivoting some rows, the recorded pairing's diagonal entry can
	// be exactly zero even though the basis matrix is nonsingular (only
	// the remaining block's determinant is guaranteed, not its diagonal),
	// so pairing-faithful replay stalls on real bases. The pairing is
	// irrelevant anyway — the basis set determines the vertex.
	//
	// Rows whose initial slack/artificial is itself in the target set
	// keep it: their columns are unit vectors and stay that way as long
	// as those rows are never used as pivot rows. Each remaining target
	// column is then installed Gaussian-elimination style, pivoting on
	// the largest-magnitude entry among remaining rows; for a
	// nonsingular basis the remaining block has no zero column, so only
	// a (near-)singular basis fails the warmPivotEps cutoff and falls
	// back to a cold solve. seen[col] doubles as "column still to
	// install": consumed columns are cleared.
	done := t.s.growDone(t.rows)
	for i := 0; i < t.rows; i++ {
		if seen[t.basis[i]] {
			seen[t.basis[i]] = false
			done[i] = true
		}
	}
	for _, col := range basis {
		if !seen[col] {
			continue // kept as an initial basic column above
		}
		seen[col] = false
		best := -1
		bestAbs := warmPivotEps
		for i := 0; i < t.rows; i++ {
			if done[i] {
				continue
			}
			if v := math.Abs(t.a[i][col]); v > bestAbs {
				best = i
				bestAbs = v
			}
		}
		if best < 0 {
			return false
		}
		t.pivot(best, col)
		done[best] = true
	}
	for i := 0; i < t.rows; i++ {
		rhs := t.a[i][t.cols]
		if rhs < -eps {
			return false // new rhs left the old basis infeasible
		}
		if rhs < 0 {
			t.a[i][t.cols] = 0 // clamp roundoff negatives
		}
	}
	return true
}

var errUnbounded = fmt.Errorf("lp: unbounded")

func (t *tableau) hasArtificials() bool { return t.artBase < t.cols }

// iterate runs primal simplex pivots until the objective row objRow has
// no negative reduced costs. phase1 restricts nothing extra here (the
// artificial columns participate); in phase 2, artificial columns are
// barred from entering.
// maxIterScale sizes the pivot budget relative to the tableau; tests
// shrink it to exercise the ErrIterLimit path.
var maxIterScale = 200

// SetIterBudgetScale overrides the pivot-budget multiplier (default 200)
// and returns a func restoring the previous value. It exists so tests in
// other packages can provoke ErrIterLimit deterministically; production
// code must not call it.
func SetIterBudgetScale(n int) (restore func()) {
	old := maxIterScale
	maxIterScale = n
	return func() { maxIterScale = old }
}

func (t *tableau) iterate(objRow int, phase1 bool) error {
	maxIter := maxIterScale * (t.rows + t.cols + 10)
	degenerate := 0
	bland := false
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return fmt.Errorf("%w after %d pivots (%d rows, %d cols)", ErrIterLimit, maxIter, t.rows, t.cols)
		}
		enter := t.chooseEntering(objRow, phase1, bland)
		if enter < 0 {
			return nil // optimal for this phase
		}
		leave := t.chooseLeaving(enter, bland)
		if leave < 0 {
			return errUnbounded
		}
		if t.a[leave][t.cols] < eps {
			degenerate++
			if degenerate > 2*(t.rows+1) {
				bland = true // anti-cycling
			}
		} else {
			degenerate = 0
			bland = false
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) chooseEntering(objRow int, phase1, bland bool) int {
	best, bestVal := -1, -eps
	row := t.a[objRow]
	for j := 0; j < t.cols; j++ {
		if !phase1 && j >= t.artBase {
			continue // artificials may not re-enter in phase 2
		}
		c := row[j]
		if c < -eps {
			if bland {
				return j // first improving column (Bland's rule)
			}
			if c < bestVal {
				bestVal = c
				best = j
			}
		}
	}
	return best
}

func (t *tableau) chooseLeaving(enter int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.rows; i++ {
		pivot := t.a[i][enter]
		if pivot <= pivotEps {
			continue
		}
		ratio := t.a[i][t.cols] / pivot
		if ratio < bestRatio-eps ||
			(math.Abs(ratio-bestRatio) <= eps && best >= 0 && tieBreak(t.basis[i], t.basis[best], bland)) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

// tieBreak prefers candidate over incumbent among equal min-ratio rows.
// Under Bland's rule, pick the smallest basis index (guarantees
// termination); otherwise prefer kicking artificials out first.
func tieBreak(candidate, incumbent int, bland bool) bool {
	if bland {
		return candidate < incumbent
	}
	return candidate > incumbent
}

// pivot makes column col basic in row. The pivot row's nonzero columns
// are collected once; each elimination then touches only those columns.
// Arithmetic is identical to the dense version (skipped entries would
// only ever add f·0), so solves are bit-for-bit reproducible regardless
// of sparsity.
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	inv := 1 / pr[col]
	nz := t.s.nz[:0]
	for j, v := range pr {
		if v != 0 { //slate:nolint floatcmp -- sparsity: exact zeros carry no pivot contribution
			pr[j] = v * inv
			nz = append(nz, j)
		}
	}
	t.s.nz = nz
	for i := range t.a {
		if i == row {
			continue
		}
		ri := t.a[i]
		c := ri[col]
		if c == 0 { //slate:nolint floatcmp -- pivot elimination skips exact zeros only
			continue
		}
		for _, j := range nz {
			ri[j] -= c * pr[j]
		}
		ri[col] = 0 // cancel roundoff exactly
	}
	t.basis[row] = col
}

// driveOutArtificials pivots any artificial still basic at value ~0 out
// of the basis; if a row has no eligible pivot it is redundant and the
// artificial stays at zero harmlessly (it cannot re-enter in phase 2).
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artBase {
			continue
		}
		for j := 0; j < t.artBase; j++ {
			if math.Abs(t.a[i][j]) > pivotEps {
				t.pivot(i, j)
				break
			}
		}
	}
}

func addRow(dst, src []float64, f float64) {
	for j, v := range src {
		if v != 0 { //slate:nolint floatcmp -- exact zeros contribute nothing
			dst[j] += f * v
		}
	}
}
