package lp

import (
	"fmt"
	"math"
)

// Numerical tolerances for the simplex. eps classifies reduced costs and
// residuals as zero; pivotEps rejects pivots too small to divide by
// safely.
const (
	eps      = 1e-9
	pivotEps = 1e-10
)

// Solve minimizes the model's objective over its constraints using a
// dense two-phase primal simplex with Bland's anti-cycling rule engaged
// after a degenerate stretch. Upper bounds registered with SetUpper are
// expanded into explicit constraints. Integer marks are ignored (this is
// the continuous relaxation); use SolveMILP to enforce them.
func (m *Model) Solve() (*Solution, error) {
	t, err := newTableau(m)
	if err != nil {
		return nil, err
	}
	return t.solve(m)
}

// tableau is the standard-form simplex tableau:
//
//	rows 0..m-1:  A | b   (b ≥ 0)
//	row  m:       phase-2 objective (original costs)
//	row  m+1:     phase-1 objective (artificial costs), dropped after phase 1
//
// Columns: n structural vars, then slack/surplus, then artificials, then
// the rhs column.
type tableau struct {
	a       [][]float64
	rows    int // constraint rows
	cols    int // total columns excluding rhs
	n       int // structural variables
	basis   []int
	artBase int // first artificial column; artificials are [artBase, cols)
}

func newTableau(m *Model) (*tableau, error) {
	type row struct {
		terms []Term
		rel   Rel
		rhs   float64
		name  string
	}
	rowsIn := make([]row, 0, len(m.cons)+len(m.vars))
	for _, c := range m.cons {
		rowsIn = append(rowsIn, row{c.terms, c.rel, c.rhs, c.name})
	}
	for j, v := range m.vars {
		if !math.IsInf(v.upper, 1) {
			if v.upper < 0 {
				return nil, fmt.Errorf("lp: variable %s has negative upper bound %v", v.name, v.upper)
			}
			rowsIn = append(rowsIn, row{[]Term{{Var(j), 1}}, LE, v.upper, v.name + "#ub"})
		}
	}

	nRows := len(rowsIn)
	n := len(m.vars)
	// Count extra columns.
	nSlack, nArt := 0, 0
	for _, r := range rowsIn {
		rhs, rel := r.rhs, r.rel
		if rhs < 0 { // normalization flips the relation
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &tableau{
		rows:    nRows,
		n:       n,
		cols:    n + nSlack + nArt,
		artBase: n + nSlack,
		basis:   make([]int, nRows),
	}
	t.a = make([][]float64, nRows+2)
	for i := range t.a {
		t.a[i] = make([]float64, t.cols+1)
	}
	slackCol, artCol := n, t.artBase
	for i, r := range rowsIn {
		sign := 1.0
		rel := r.rel
		if r.rhs < 0 {
			sign = -1
			rel = flip(rel)
		}
		for _, term := range r.terms {
			t.a[i][term.Var] = sign * term.Coef
		}
		t.a[i][t.cols] = sign * r.rhs
		switch rel {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
	// Phase-2 objective row: original costs (minimization).
	for j, v := range m.vars {
		t.a[nRows][j] = v.obj
	}
	// Phase-1 objective row: sum of artificials.
	for j := t.artBase; j < t.cols; j++ {
		t.a[nRows+1][j] = 1
	}
	return t, nil
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func (t *tableau) solve(m *Model) (*Solution, error) {
	objRow1 := t.rows + 1 // phase-1 row
	objRow2 := t.rows     // phase-2 row

	// Price out the initial basis from the phase-1 row (artificials have
	// cost 1 and are basic).
	for i := 0; i < t.rows; i++ {
		if t.basis[i] >= t.artBase {
			addRow(t.a[objRow1], t.a[i], -1)
		}
	}
	if t.hasArtificials() {
		if err := t.iterate(objRow1, true); err != nil {
			return nil, err
		}
		if t.a[objRow1][t.cols] < -eps {
			// Phase-1 optimum > 0 (the row stores the negated objective).
			return &Solution{Status: Infeasible}, nil
		}
		t.driveOutArtificials()
	}
	// Price out the basis from the phase-2 row.
	for i := 0; i < t.rows; i++ {
		b := t.basis[i]
		if c := t.a[objRow2][b]; c != 0 { //slate:nolint floatcmp -- pivot elimination skips exact zeros only
			addRow(t.a[objRow2], t.a[i], -c)
		}
	}
	if err := t.iterate(objRow2, false); err != nil {
		if err == errUnbounded {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	sol := &Solution{Status: Optimal, X: make([]float64, t.n)}
	for i, b := range t.basis {
		if b < t.n {
			sol.X[b] = t.a[i][t.cols]
		}
	}
	var obj float64
	for j, v := range m.vars {
		obj += v.obj * sol.X[j]
	}
	sol.Objective = obj
	return sol, nil
}

var errUnbounded = fmt.Errorf("lp: unbounded")

func (t *tableau) hasArtificials() bool { return t.artBase < t.cols }

// iterate runs primal simplex pivots until the objective row objRow has
// no negative reduced costs. phase1 restricts nothing extra here (the
// artificial columns participate); in phase 2, artificial columns are
// barred from entering.
func (t *tableau) iterate(objRow int, phase1 bool) error {
	maxIter := 200 * (t.rows + t.cols + 10)
	degenerate := 0
	bland := false
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return fmt.Errorf("lp: simplex exceeded %d iterations", maxIter)
		}
		enter := t.chooseEntering(objRow, phase1, bland)
		if enter < 0 {
			return nil // optimal for this phase
		}
		leave := t.chooseLeaving(enter, bland)
		if leave < 0 {
			return errUnbounded
		}
		if t.a[leave][t.cols] < eps {
			degenerate++
			if degenerate > 2*(t.rows+1) {
				bland = true // anti-cycling
			}
		} else {
			degenerate = 0
			bland = false
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) chooseEntering(objRow int, phase1, bland bool) int {
	best, bestVal := -1, -eps
	for j := 0; j < t.cols; j++ {
		if !phase1 && j >= t.artBase {
			continue // artificials may not re-enter in phase 2
		}
		c := t.a[objRow][j]
		if c < -eps {
			if bland {
				return j // first improving column (Bland's rule)
			}
			if c < bestVal {
				bestVal = c
				best = j
			}
		}
	}
	return best
}

func (t *tableau) chooseLeaving(enter int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.rows; i++ {
		pivot := t.a[i][enter]
		if pivot <= pivotEps {
			continue
		}
		ratio := t.a[i][t.cols] / pivot
		if ratio < bestRatio-eps ||
			(math.Abs(ratio-bestRatio) <= eps && best >= 0 && tieBreak(t.basis[i], t.basis[best], bland)) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

// tieBreak prefers candidate over incumbent among equal min-ratio rows.
// Under Bland's rule, pick the smallest basis index (guarantees
// termination); otherwise prefer kicking artificials out first.
func tieBreak(candidate, incumbent int, bland bool) bool {
	if bland {
		return candidate < incumbent
	}
	return candidate > incumbent
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	scaleRow(t.a[row], 1/p)
	for i := range t.a {
		if i == row {
			continue
		}
		if c := t.a[i][col]; c != 0 { //slate:nolint floatcmp -- pivot elimination skips exact zeros only
			addRow(t.a[i], t.a[row], -c)
			t.a[i][col] = 0 // cancel roundoff exactly
		}
	}
	t.basis[row] = col
}

// driveOutArtificials pivots any artificial still basic at value ~0 out
// of the basis; if a row has no eligible pivot it is redundant and the
// artificial stays at zero harmlessly (it cannot re-enter in phase 2).
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artBase {
			continue
		}
		for j := 0; j < t.artBase; j++ {
			if math.Abs(t.a[i][j]) > pivotEps {
				t.pivot(i, j)
				break
			}
		}
	}
}

func scaleRow(row []float64, f float64) {
	for j := range row {
		row[j] *= f
	}
}

func addRow(dst, src []float64, f float64) {
	for j := range dst {
		dst[j] += f * src[j]
	}
}
