package lp

import (
	"fmt"
	"math"
	"sort"
)

// MILPOptions tunes SolveMILP.
type MILPOptions struct {
	// MaxNodes caps the number of branch-and-bound nodes explored.
	// Zero means the default (100000).
	MaxNodes int
	// IntTol is how far from integral a value may be and still count as
	// integer. Zero means the default (1e-6).
	IntTol float64
	// Gap terminates early when (best - bound)/max(1,|best|) falls
	// below it. Zero means prove optimality exactly.
	Gap float64
}

func (o *MILPOptions) defaults() MILPOptions {
	out := MILPOptions{MaxNodes: 100000, IntTol: 1e-6}
	if o != nil {
		if o.MaxNodes > 0 {
			out.MaxNodes = o.MaxNodes
		}
		if o.IntTol > 0 {
			out.IntTol = o.IntTol
		}
		out.Gap = o.Gap
	}
	return out
}

// bound is an extra [lo, hi] restriction applied to one variable at a
// branch-and-bound node.
type bound struct {
	v      Var
	lo, hi float64
}

// SolveMILP minimizes the model subject to the integrality marks set
// with SetInteger, using LP-relaxation branch-and-bound with best-bound
// node selection and most-fractional branching. If no variables are
// integral it is equivalent to Solve.
func (m *Model) SolveMILP(opt *MILPOptions) (*Solution, error) {
	o := opt.defaults()
	var intVars []Var
	for j, v := range m.vars {
		if v.integer {
			intVars = append(intVars, Var(j))
		}
	}
	if len(intVars) == 0 {
		return m.Solve()
	}

	type node struct {
		bounds []bound
		lb     float64 // parent relaxation objective (lower bound)
	}
	root := node{}
	open := []node{root}
	var best *Solution
	bestObj := math.Inf(1)
	nodes := 0

	solveWith := func(bounds []bound) (*Solution, error) {
		sub := m.clone()
		for _, b := range bounds {
			if b.lo > 0 {
				// x >= lo as a constraint (vars are naturally >= 0).
				if err := sub.AddConstraint("bnb#lo", []Term{{b.v, 1}}, GE, b.lo); err != nil {
					return nil, err
				}
			}
			if !math.IsInf(b.hi, 1) {
				cur := sub.vars[b.v].upper
				if b.hi < cur {
					sub.vars[b.v].upper = b.hi
				}
			}
		}
		return sub.Solve()
	}

	for len(open) > 0 {
		if nodes >= o.MaxNodes {
			if best != nil {
				return best, nil
			}
			return nil, fmt.Errorf("lp: branch-and-bound node limit %d exhausted without incumbent", o.MaxNodes)
		}
		// Best-bound: pick the open node with the smallest parent bound.
		sort.SliceStable(open, func(i, j int) bool { return open[i].lb < open[j].lb })
		cur := open[0]
		open = open[1:]
		if best != nil && cur.lb >= bestObj-o.Gap*math.Max(1, math.Abs(bestObj)) {
			continue // pruned by bound
		}
		nodes++
		sol, err := solveWith(cur.bounds)
		if err != nil {
			return nil, err
		}
		if sol.Status == Unbounded {
			// An unbounded relaxation at the root means the MILP is
			// unbounded or infeasible; we report unbounded.
			if len(cur.bounds) == 0 {
				return sol, nil
			}
			continue
		}
		if sol.Status != Optimal {
			continue // infeasible branch
		}
		if best != nil && sol.Objective >= bestObj-1e-12 {
			continue // cannot improve
		}
		// Find the most fractional integer variable.
		branch := Var(-1)
		worst := o.IntTol
		for _, v := range intVars {
			x := sol.X[v]
			f := math.Abs(x - math.Round(x))
			if f > worst {
				worst = f
				branch = v
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			bestObj = sol.Objective
			s := *sol
			s.X = append([]float64(nil), sol.X...)
			best = &s
			continue
		}
		x := sol.X[branch]
		lo := append(append([]bound(nil), cur.bounds...), bound{v: branch, lo: 0, hi: math.Floor(x)})
		hi := append(append([]bound(nil), cur.bounds...), bound{v: branch, lo: math.Ceil(x), hi: math.Inf(1)})
		open = append(open, node{bounds: lo, lb: sol.Objective}, node{bounds: hi, lb: sol.Objective})
	}
	if best == nil {
		return &Solution{Status: Infeasible}, nil
	}
	return best, nil
}

// clone returns a deep copy of the model safe to mutate independently.
func (m *Model) clone() *Model {
	c := &Model{
		vars: append([]variable(nil), m.vars...),
		cons: make([]constraint, len(m.cons)),
	}
	for i, con := range m.cons {
		c.cons[i] = constraint{
			name:  con.name,
			terms: append([]Term(nil), con.terms...),
			rel:   con.rel,
			rhs:   con.rhs,
		}
	}
	return c
}
