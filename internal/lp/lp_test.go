package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(b)) }

func TestSimplexTextbookMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
	// Optimum: x=2, y=6, obj=36. As minimization of -(3x+5y).
	m := NewModel()
	x := m.AddVar("x", -3)
	y := m.AddVar("y", -5)
	m.MustConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.MustConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.MustConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOK(t, m)
	if !almost(sol.Objective, -36) {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if !almost(sol.Value(x), 2) || !almost(sol.Value(y), 6) {
		t.Errorf("x=%v y=%v, want 2, 6", sol.Value(x), sol.Value(y))
	}
}

func TestSimplexEqualityAndGE(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x >= 3, y >= 2. Optimum x=8, y=2, obj=22.
	m := NewModel()
	x := m.AddVar("x", 2)
	y := m.AddVar("y", 3)
	m.MustConstraint("sum", []Term{{x, 1}, {y, 1}}, EQ, 10)
	m.MustConstraint("xmin", []Term{{x, 1}}, GE, 3)
	m.MustConstraint("ymin", []Term{{y, 1}}, GE, 2)
	sol := solveOK(t, m)
	if !almost(sol.Objective, 22) {
		t.Errorf("objective = %v, want 22", sol.Objective)
	}
	if !almost(sol.Value(x), 8) || !almost(sol.Value(y), 2) {
		t.Errorf("x=%v y=%v, want 8, 2", sol.Value(x), sol.Value(y))
	}
}

func TestSimplexNegativeRHSNormalization(t *testing.T) {
	// -x - y <= -4  is x + y >= 4; min x + 2y -> x=4, y=0.
	m := NewModel()
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 2)
	m.MustConstraint("c", []Term{{x, -1}, {y, -1}}, LE, -4)
	sol := solveOK(t, m)
	if !almost(sol.Objective, 4) || !almost(sol.Value(x), 4) {
		t.Errorf("obj=%v x=%v, want 4, 4", sol.Objective, sol.Value(x))
	}
}

func TestSimplexInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 1)
	m.MustConstraint("hi", []Term{{x, 1}}, LE, 1)
	m.MustConstraint("lo", []Term{{x, 1}}, GE, 2)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", -1) // maximize x, no upper limit
	m.MustConstraint("c", []Term{{x, 1}}, GE, 0)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexUpperBounds(t *testing.T) {
	// min -x - y with x <= 2.5, y <= 1.5 -> obj = -4.
	m := NewModel()
	x := m.AddVar("x", -1)
	y := m.AddVar("y", -1)
	m.SetUpper(x, 2.5)
	m.SetUpper(y, 1.5)
	sol := solveOK(t, m)
	if !almost(sol.Objective, -4) {
		t.Errorf("objective = %v, want -4", sol.Objective)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Beale's classic cycling example; must terminate with optimum -0.05.
	m := NewModel()
	x1 := m.AddVar("x1", -0.75)
	x2 := m.AddVar("x2", 150)
	x3 := m.AddVar("x3", -0.02)
	x4 := m.AddVar("x4", 6)
	m.MustConstraint("c1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.MustConstraint("c2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.MustConstraint("c3", []Term{{x3, 1}}, LE, 1)
	sol := solveOK(t, m)
	if !almost(sol.Objective, -0.05) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestSimplexZeroRHSEquality(t *testing.T) {
	// Flow-conservation-style constraint with rhs 0.
	m := NewModel()
	in := m.AddVar("in", 0)
	out := m.AddVar("out", 1)
	m.MustConstraint("conserve", []Term{{in, 1}, {out, -1}}, EQ, 0)
	m.MustConstraint("demand", []Term{{in, 1}}, GE, 5)
	sol := solveOK(t, m)
	if !almost(sol.Value(out), 5) {
		t.Errorf("out = %v, want 5", sol.Value(out))
	}
}

func TestSimplexMergesDuplicateTerms(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 1)
	// x + x >= 6 -> x >= 3.
	m.MustConstraint("c", []Term{{x, 1}, {x, 1}}, GE, 6)
	sol := solveOK(t, m)
	if !almost(sol.Value(x), 3) {
		t.Errorf("x = %v, want 3", sol.Value(x))
	}
}

func TestConstraintValidation(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 1)
	if err := m.AddConstraint("bad", []Term{{Var(5), 1}}, LE, 1); err == nil {
		t.Error("unknown var should error")
	}
	if err := m.AddConstraint("bad", []Term{{x, math.NaN()}}, LE, 1); err == nil {
		t.Error("NaN coefficient should error")
	}
	if err := m.AddConstraint("bad", []Term{{x, 1}}, LE, math.Inf(1)); err == nil {
		t.Error("infinite rhs should error")
	}
	m.SetUpper(x, -1)
	if _, err := m.Solve(); err == nil {
		t.Error("negative upper bound should error")
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Same equality twice: the second is redundant; artificial stays at
	// zero and the solve must still succeed.
	m := NewModel()
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 1)
	m.MustConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	m.MustConstraint("e2", []Term{{x, 1}, {y, 1}}, EQ, 4)
	sol := solveOK(t, m)
	if !almost(sol.Objective, 4) {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=0 b=c=1? Check:
	// b+c: weight 6, value 20. a+c: weight 5, value 17. a+b: weight 7 no.
	// Optimum 20.
	m := NewModel()
	vars := []Var{
		m.AddVar("a", -10),
		m.AddVar("b", -13),
		m.AddVar("c", -7),
	}
	for _, v := range vars {
		m.SetUpper(v, 1)
		m.SetInteger(v)
	}
	m.MustConstraint("w", []Term{{vars[0], 3}, {vars[1], 4}, {vars[2], 2}}, LE, 6)
	sol, err := m.SolveMILP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.Objective, -20) {
		t.Errorf("objective = %v, want -20", sol.Objective)
	}
	for _, v := range vars {
		x := sol.Value(v)
		if math.Abs(x-math.Round(x)) > 1e-6 {
			t.Errorf("var %d = %v, not integral", v, x)
		}
	}
}

func TestMILPMatchesLPWhenRelaxationIntegral(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", -1)
	m.SetInteger(x)
	m.MustConstraint("c", []Term{{x, 1}}, LE, 7)
	sol, err := m.SolveMILP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, -7) {
		t.Errorf("objective = %v, want -7", sol.Objective)
	}
}

func TestMILPInfeasible(t *testing.T) {
	// 2x = 3 with x integer has no solution.
	m := NewModel()
	x := m.AddVar("x", 1)
	m.SetInteger(x)
	m.MustConstraint("c", []Term{{x, 2}}, EQ, 3)
	sol, err := m.SolveMILP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestMILPWithoutIntegerVarsEqualsSolve(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", -2)
	m.SetUpper(x, 3.5)
	sol, err := m.SolveMILP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, -7) {
		t.Errorf("objective = %v, want -7", sol.Objective)
	}
}

// bruteForce enumerates all vertices of {Ax rel b, 0 <= x <= ub} for tiny
// problems by solving every n-subset of the active-constraint system, and
// returns the best feasible objective (min). Used as ground truth.
func bruteForce(obj []float64, cons []struct {
	a   []float64
	rel Rel
	rhs float64
}, ub []float64) (float64, bool) {
	n := len(obj)
	// Build the full list of hyperplanes: constraints as equalities,
	// x_j = 0, x_j = ub_j.
	var planes []plane
	for _, c := range cons {
		planes = append(planes, plane{c.a, c.rhs})
	}
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		planes = append(planes, plane{e, 0})
		if !math.IsInf(ub[j], 1) {
			planes = append(planes, plane{e, ub[j]})
		}
	}
	feasible := func(x []float64) bool {
		for j := 0; j < n; j++ {
			if x[j] < -1e-7 || x[j] > ub[j]+1e-7 {
				return false
			}
		}
		for _, c := range cons {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += c.a[j] * x[j]
			}
			switch c.rel {
			case LE:
				if dot > c.rhs+1e-7 {
					return false
				}
			case GE:
				if dot < c.rhs-1e-7 {
					return false
				}
			case EQ:
				if math.Abs(dot-c.rhs) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	best := math.Inf(1)
	found := false
	// Choose n planes, solve, check.
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(planes, idx, n)
			if ok && feasible(x) {
				found = true
				v := 0.0
				for j := 0; j < n; j++ {
					v += obj[j] * x[j]
				}
				if v < best {
					best = v
				}
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

type plane struct {
	a   []float64
	rhs float64
}

func solveSquare(planes []plane, idx []int, n int) ([]float64, bool) {
	// Gaussian elimination on the n x n system.
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n+1)
		copy(a[i], planes[idx[i]].a)
		a[i][n] = planes[idx[i]].rhs
	}
	for col := 0; col < n; col++ {
		p := -1
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > 1e-9 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, false
		}
		a[col], a[p] = a[p], a[col]
		f := a[col][col]
		for j := col; j <= n; j++ {
			a[col][j] /= f
		}
		for r := 0; r < n; r++ {
			if r != col && a[r][col] != 0 { //slate:nolint floatcmp -- reference elimination skips structurally exact zeros
				f := a[r][col]
				for j := col; j <= n; j++ {
					a[r][j] -= f * a[col][j]
				}
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = a[i][n]
	}
	return x, true
}

func TestSimplexAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(3) // 2..4 vars
		k := 1 + rng.Intn(3) // 1..3 constraints
		obj := make([]float64, n)
		ub := make([]float64, n)
		for j := range obj {
			obj[j] = math.Round((rng.Float64()*4-2)*4) / 4
			ub[j] = float64(1 + rng.Intn(5))
		}
		cons := make([]struct {
			a   []float64
			rel Rel
			rhs float64
		}, k)
		for i := range cons {
			a := make([]float64, n)
			for j := range a {
				a[j] = math.Round((rng.Float64()*4-2)*4) / 4
			}
			cons[i].a = a
			cons[i].rel = Rel(rng.Intn(3))
			cons[i].rhs = math.Round((rng.Float64()*8-2)*4) / 4
		}
		wantObj, feasible := bruteForce(obj, cons, ub)

		m := NewModel()
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = m.AddVar("x", obj[j])
			m.SetUpper(vars[j], ub[j])
		}
		for i, c := range cons {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{vars[j], c.a[j]}
			}
			m.MustConstraint("c", terms, c.rel, c.rhs)
			_ = i
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: simplex found optimum %v but brute force says infeasible", trial, sol.Objective)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force found %v", trial, sol.Status, wantObj)
		}
		if math.Abs(sol.Objective-wantObj) > 1e-6*(1+math.Abs(wantObj)) {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, sol.Objective, wantObj)
		}
	}
}

func TestLargeLPPerformanceSanity(t *testing.T) {
	// A transportation problem: 20 sources x 20 sinks with random costs.
	// Verifies the solver handles a few hundred variables.
	rng := rand.New(rand.NewSource(7))
	const s, d = 20, 20
	m := NewModel()
	x := make([][]Var, s)
	for i := range x {
		x[i] = make([]Var, d)
		for j := range x[i] {
			x[i][j] = m.AddVar("x", 1+rng.Float64()*9)
		}
	}
	for i := 0; i < s; i++ {
		terms := make([]Term, d)
		for j := 0; j < d; j++ {
			terms[j] = Term{x[i][j], 1}
		}
		m.MustConstraint("supply", terms, EQ, 10)
	}
	for j := 0; j < d; j++ {
		terms := make([]Term, s)
		for i := 0; i < s; i++ {
			terms[i] = Term{x[i][j], 1}
		}
		m.MustConstraint("demand", terms, EQ, 10)
	}
	sol := solveOK(t, m)
	// Total shipped is 200; min cost must be >= 200 * min cost ~ 200.
	if sol.Objective < 200 {
		t.Errorf("objective %v below theoretical floor", sol.Objective)
	}
}

// bruteForceILP enumerates all integer points of {0..ub}^n and returns
// the best feasible objective (min) — ground truth for small MILPs.
func bruteForceILP(obj []float64, cons []struct {
	a   []float64
	rel Rel
	rhs float64
}, ub []int) (float64, bool) {
	n := len(obj)
	best := math.Inf(1)
	found := false
	x := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for _, c := range cons {
				dot := 0.0
				for j := 0; j < n; j++ {
					dot += c.a[j] * float64(x[j])
				}
				switch c.rel {
				case LE:
					if dot > c.rhs+1e-9 {
						return
					}
				case GE:
					if dot < c.rhs-1e-9 {
						return
					}
				case EQ:
					if math.Abs(dot-c.rhs) > 1e-9 {
						return
					}
				}
			}
			v := 0.0
			for j := 0; j < n; j++ {
				v += obj[j] * float64(x[j])
			}
			found = true
			if v < best {
				best = v
			}
			return
		}
		for v := 0; v <= ub[i]; v++ {
			x[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best, found
}

func TestMILPAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(3) // 2..4 integer vars
		k := 1 + rng.Intn(3)
		obj := make([]float64, n)
		ub := make([]int, n)
		for j := range obj {
			obj[j] = math.Round((rng.Float64()*4-2)*4) / 4
			ub[j] = 1 + rng.Intn(4)
		}
		cons := make([]struct {
			a   []float64
			rel Rel
			rhs float64
		}, k)
		for i := range cons {
			a := make([]float64, n)
			for j := range a {
				a[j] = math.Round((rng.Float64()*4-2)*2) / 2
			}
			cons[i].a = a
			cons[i].rel = Rel(rng.Intn(3))
			cons[i].rhs = math.Round((rng.Float64()*10 - 2))
		}
		want, feasible := bruteForceILP(obj, cons, ub)

		m := NewModel()
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = m.AddVar("x", obj[j])
			m.SetUpper(vars[j], float64(ub[j]))
			m.SetInteger(vars[j])
		}
		for _, c := range cons {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{vars[j], c.a[j]}
			}
			m.MustConstraint("c", terms, c.rel, c.rhs)
		}
		sol, err := m.SolveMILP(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: MILP found %v but brute force says infeasible", trial, sol.Objective)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force found %v", trial, sol.Status, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: MILP %v, brute force %v", trial, sol.Objective, want)
		}
		for j, v := range vars {
			xv := sol.Value(v)
			if math.Abs(xv-math.Round(xv)) > 1e-6 {
				t.Fatalf("trial %d: var %d = %v not integral", trial, j, xv)
			}
		}
	}
}
