package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomFeasibleLP builds a bounded LP that is feasible by construction:
// a random point x0 inside the box is sampled first and every
// constraint's rhs is derived from A·x0 so x0 satisfies it. Continuous
// (unrounded) coefficients make the optimum unique almost surely, so
// differential tests may compare X, not just the objective.
func randomFeasibleLP(rng *rand.Rand) *Model {
	n := 3 + rng.Intn(10) // 3..12 vars
	k := 2 + rng.Intn(9)  // 2..10 constraints
	m := NewModel()
	vars := make([]Var, n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		ub := 2 + 10*rng.Float64()
		vars[j] = m.AddVar("x", rng.Float64()*4-2)
		m.SetUpper(vars[j], ub)
		x0[j] = ub * rng.Float64()
	}
	for i := 0; i < k; i++ {
		var terms []Term
		dot := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				continue
			}
			c := rng.Float64()*6 - 3
			terms = append(terms, Term{vars[j], c})
			dot += c * x0[j]
		}
		if len(terms) == 0 {
			continue
		}
		switch Rel(rng.Intn(3)) {
		case LE:
			m.MustConstraint("c", terms, LE, dot+rng.Float64()*2)
		case GE:
			m.MustConstraint("c", terms, GE, dot-rng.Float64()*2)
		case EQ:
			m.MustConstraint("c", terms, EQ, dot)
		}
	}
	return m
}

// perturbRHS drifts every constraint's rhs a little, mimicking demand
// drift between control ticks. The result may or may not stay feasible;
// warm and cold solves must agree either way.
func perturbRHS(t *testing.T, m *Model, rng *rand.Rand, scale float64) {
	t.Helper()
	for i := 0; i < m.NumConstraints(); i++ {
		if err := m.SetRHS(i, m.cons[i].rhs+scale*(rng.Float64()*2-1)); err != nil {
			t.Fatalf("SetRHS: %v", err)
		}
	}
}

func sameSolution(t *testing.T, trial int, warm, cold *Solution) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("trial %d: warm status %v, cold status %v", trial, warm.Status, cold.Status)
	}
	if cold.Status != Optimal {
		return
	}
	if !almost(warm.Objective, cold.Objective) {
		t.Fatalf("trial %d: warm objective %v, cold %v", trial, warm.Objective, cold.Objective)
	}
	for j := range cold.X {
		if !almost(warm.X[j], cold.X[j]) {
			t.Fatalf("trial %d: X[%d]: warm %v, cold %v", trial, j, warm.X[j], cold.X[j])
		}
	}
}

// TestWarmMatchesColdRandom is the core differential test: across many
// seeded random LPs, a warm start from the pre-perturbation basis must
// land on the same optimum (status, objective, X) as a cold solve of the
// perturbed problem.
func TestWarmMatchesColdRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmSolver := NewSolver()
	for trial := 0; trial < 200; trial++ {
		m := randomFeasibleLP(rng)
		base, err := NewSolver().Solve(m)
		if err != nil {
			t.Fatalf("trial %d: base solve: %v", trial, err)
		}
		if base.Status != Optimal {
			t.Fatalf("trial %d: base status %v, want optimal (feasible by construction)", trial, base.Status)
		}
		// Small drift should usually keep the basis feasible (true warm
		// path); large drift exercises the fallback. Alternate both.
		scale := 0.05
		if trial%3 == 0 {
			scale = 5
		}
		perturbRHS(t, m, rng, scale)
		warm, err := warmSolver.SolveFrom(m, base.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		cold, err := NewSolver().Solve(m)
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		sameSolution(t, trial, warm, cold)
	}
}

// TestWarmSteadyState re-solves the unchanged problem from its own
// optimal basis: phase 1 must be skipped and the same optimum returned.
func TestWarmSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		m := randomFeasibleLP(rng)
		s := NewSolver()
		base, err := s.Solve(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		warm, err := s.SolveFrom(m, base.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		sameSolution(t, trial, warm, base)
	}
}

// TestSolverReuseNoLeak interleaves solves of differently-shaped models
// through one Solver and demands bit-identical results to fresh-solver
// solves: any scratch not fully reinitialized would surface here.
func TestSolverReuseNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	models := make([]*Model, 6)
	want := make([]*Solution, len(models))
	for i := range models {
		models[i] = randomFeasibleLP(rng)
		sol, err := NewSolver().Solve(models[i])
		if err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		want[i] = sol
	}
	shared := NewSolver()
	for pass := 0; pass < 3; pass++ {
		for i, m := range models {
			got, err := shared.Solve(m)
			if err != nil {
				t.Fatalf("pass %d model %d: %v", pass, i, err)
			}
			if got.Status != want[i].Status || got.Objective != want[i].Objective { //slate:nolint floatcmp -- reuse must be bit-identical
				t.Fatalf("pass %d model %d: got status %v obj %v, want %v %v",
					pass, i, got.Status, got.Objective, want[i].Status, want[i].Objective)
			}
			for j := range want[i].X {
				if got.X[j] != want[i].X[j] { //slate:nolint floatcmp -- reuse must be bit-identical
					t.Fatalf("pass %d model %d: X[%d] = %v, want %v", pass, i, j, got.X[j], want[i].X[j])
				}
			}
		}
	}
}

// TestSolveMatchesSolver verifies Model.Solve (fresh scratch each call)
// and Solver.Solve produce bit-identical results.
func TestSolveMatchesSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		m := randomFeasibleLP(rng)
		a, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := NewSolver().Solve(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if a.Objective != b.Objective { //slate:nolint floatcmp -- same code path must agree exactly
			t.Fatalf("trial %d: Model.Solve %v != Solver.Solve %v", trial, a.Objective, b.Objective)
		}
	}
}

// TestSolveFromDegenerateBases feeds SolveFrom bases that cannot be
// installed — nil, wrong length, duplicates, out-of-range columns — and
// expects a silent, correct cold fallback.
func TestSolveFromDegenerateBases(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randomFeasibleLP(rng)
	cold, err := NewSolver().Solve(m)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	bad := [][]int{
		nil,
		{},
		{0},
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{-1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
		{1 << 20, 1, 2, 3},
	}
	for i, basis := range bad {
		got, err := NewSolver().SolveFrom(m, basis)
		if err != nil {
			t.Fatalf("basis %d: %v", i, err)
		}
		sameSolution(t, i, got, cold)
	}
}

// TestIterLimitTyped shrinks the pivot budget until the solver cannot
// converge and verifies the failure is reported as ErrIterLimit, so
// control loops can distinguish "retry next tick" from a broken model.
func TestIterLimitTyped(t *testing.T) {
	old := maxIterScale
	maxIterScale = 0
	defer func() { maxIterScale = old }()

	m := NewModel()
	x := m.AddVar("x", -1)
	y := m.AddVar("y", -1)
	m.SetUpper(x, 10)
	m.SetUpper(y, 10)
	m.MustConstraint("c", []Term{{x, 1}, {y, 1}}, LE, 15)
	_, err := m.Solve()
	if err == nil {
		t.Fatal("expected iteration-limit error with zero budget")
	}
	if !errors.Is(err, ErrIterLimit) {
		t.Fatalf("error %v is not ErrIterLimit", err)
	}
}

// TestWarmAfterIterLimitFallsBack verifies that when only the warm path
// blows the budget the caller still gets a typed error rather than a
// wrong answer (both paths share the budget here, so the cold retry
// fails too — the point is errors.Is compatibility end to end).
func TestWarmAfterIterLimitFallsBack(t *testing.T) {
	old := maxIterScale
	maxIterScale = 0
	defer func() { maxIterScale = old }()

	rng := rand.New(rand.NewSource(43))
	m := randomFeasibleLP(rng)
	_, err := NewSolver().SolveFrom(m, []int{0})
	if err != nil && !errors.Is(err, ErrIterLimit) {
		t.Fatalf("error %v is not ErrIterLimit", err)
	}
}

// TestSetCoefUpdatesModel verifies SetCoef edits reach the solver and
// keep terms sorted for later binary searches.
func TestSetCoefUpdatesModel(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 2)
	m.SetUpper(x, 100)
	m.SetUpper(y, 100)
	m.MustConstraint("c", []Term{{x, 1}}, GE, 10)

	// minimize x+2y s.t. x >= 10: x=10, y=0.
	sol := solveOK(t, m)
	if !almost(sol.Objective, 10) {
		t.Fatalf("objective %v, want 10", sol.Objective)
	}
	// Insert y into the constraint: x + 4y >= 10 → still x=10 cheapest...
	if err := m.SetCoef(0, y, 4); err != nil {
		t.Fatalf("SetCoef: %v", err)
	}
	// ...then make x expensive so the solver must route through y.
	m.SetObj(x, 100)
	sol = solveOK(t, m)
	if !almost(sol.Objective, 5) { // y = 2.5 at cost 2
		t.Fatalf("objective %v, want 5 (y=2.5)", sol.Objective)
	}
	// Zero an existing coefficient and an absent one.
	if err := m.SetCoef(0, x, 0); err != nil {
		t.Fatalf("SetCoef zero: %v", err)
	}
	sol = solveOK(t, m)
	if !almost(sol.Objective, 5) {
		t.Fatalf("objective %v, want 5 after zeroing x", sol.Objective)
	}
	if err := m.SetCoef(0, x, 0); err != nil {
		t.Fatalf("SetCoef absent zero: %v", err)
	}
	if err := m.SetCoef(7, x, 1); err == nil {
		t.Fatal("expected out-of-range constraint error")
	}
	if err := m.SetCoef(0, Var(9), 1); err == nil {
		t.Fatal("expected unknown variable error")
	}
	if err := m.SetRHS(9, 1); err == nil {
		t.Fatal("expected out-of-range SetRHS error")
	}
	if err := m.SetRHS(0, math.NaN()); err == nil {
		t.Fatal("expected non-finite SetRHS error")
	}
}
