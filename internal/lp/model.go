// Package lp implements a self-contained linear programming solver — a
// dense two-phase primal simplex — plus a branch-and-bound wrapper for
// mixed-integer programs.
//
// SLATE's global controller formulates request routing as an
// optimization (paper §3.3: "formulated as a Mixed Integer Linear
// Program"). With convex piecewise-linear latency costs the continuous
// relaxation is exact, so the hot path is pure LP; branch-and-bound
// covers integral extensions such as all-or-nothing class pinning. The
// solver stays a simple tableau simplex — SLATE's per-application models
// have hundreds of variables, far below the scale where revised simplex
// or interior point methods pay off — but its pivots are sparsity-aware
// and a reusable Solver supports scratch reuse and warm starts from the
// previous tick's basis (see Solver.SolveFrom).
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Var identifies a decision variable within a Model.
type Var int

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

type variable struct {
	name    string
	obj     float64
	upper   float64 // +Inf when unbounded above
	integer bool
}

type constraint struct {
	name  string
	terms []Term
	rel   Rel
	rhs   float64
}

// Model is a linear (or mixed-integer) program under construction:
// minimize c·x subject to linear constraints, x ≥ 0, with optional
// upper bounds and integrality marks. Not safe for concurrent use.
type Model struct {
	vars []variable
	cons []constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a variable with objective coefficient obj and domain
// x ≥ 0 (no upper bound). The name is used in error messages only.
func (m *Model) AddVar(name string, obj float64) Var {
	m.vars = append(m.vars, variable{name: name, obj: obj, upper: math.Inf(1)})
	return Var(len(m.vars) - 1)
}

// SetUpper bounds the variable above: x ≤ hi.
func (m *Model) SetUpper(v Var, hi float64) {
	m.vars[v].upper = hi
}

// SetInteger marks the variable as integral (used by SolveMILP; Solve
// ignores the mark and solves the continuous relaxation).
func (m *Model) SetInteger(v Var) {
	m.vars[v].integer = true
}

// SetObj replaces the variable's objective coefficient.
func (m *Model) SetObj(v Var, obj float64) {
	m.vars[v].obj = obj
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// VarName returns the variable's name.
func (m *Model) VarName(v Var) string { return m.vars[v].name }

// AddConstraint adds Σ terms rel rhs. Terms referencing the same
// variable are summed. It returns an error for out-of-range variables
// or non-finite coefficients.
func (m *Model) AddConstraint(name string, terms []Term, rel Rel, rhs float64) error {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint %q has non-finite rhs %v", name, rhs)
	}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.vars) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			return fmt.Errorf("lp: constraint %q has non-finite coefficient for %s", name, m.vars[t.Var].name)
		}
	}
	// Sort a copy by variable and merge duplicate mentions, keeping terms
	// in ascending Var order (SetCoef's binary search relies on this).
	// Sorting len(terms) beats the old per-constraint scan over every
	// model variable, which made model construction O(cons·vars).
	out := make([]Term, len(terms))
	copy(out, terms)
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	k := 0
	for i := 0; i < len(out); {
		v, c := out[i].Var, out[i].Coef
		for i++; i < len(out) && out[i].Var == v; i++ {
			c += out[i].Coef
		}
		if c != 0 { //slate:nolint floatcmp -- sparsity: drop exactly-cancelled terms only
			out[k] = Term{Var: v, Coef: c}
			k++
		}
	}
	m.cons = append(m.cons, constraint{name: name, terms: out[:k], rel: rel, rhs: rhs})
	return nil
}

// MustConstraint is AddConstraint that panics on error, for construction
// code whose inputs are programmatically correct.
func (m *Model) MustConstraint(name string, terms []Term, rel Rel, rhs float64) {
	if err := m.AddConstraint(name, terms, rel, rhs); err != nil {
		panic(err)
	}
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the value of each variable, indexed by Var. Only valid
	// when Status == Optimal.
	X []float64
	// Basis is the optimal simplex basis (one tableau column per
	// constraint row, in solver-internal numbering). Hand it to
	// Solver.SolveFrom to warm-start a nearby problem — typically the
	// next control tick, after demand drifted. Only valid when
	// Status == Optimal.
	Basis []int
	// Warm reports whether this solve installed a warm-started basis and
	// skipped phase 1 (see Solver.SolveFrom).
	Warm bool
}

// Value returns the solved value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }
