// Package lp implements a self-contained linear programming solver — a
// dense two-phase primal simplex — plus a branch-and-bound wrapper for
// mixed-integer programs.
//
// SLATE's global controller formulates request routing as an
// optimization (paper §3.3: "formulated as a Mixed Integer Linear
// Program"). With convex piecewise-linear latency costs the continuous
// relaxation is exact, so the hot path is pure LP; branch-and-bound
// covers integral extensions such as all-or-nothing class pinning. The
// solver is deliberately dense and simple: SLATE's per-application
// models have hundreds of variables, far below the scale where sparse
// revised simplex or interior point methods pay off.
package lp

import (
	"fmt"
	"math"
)

// Var identifies a decision variable within a Model.
type Var int

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

type variable struct {
	name    string
	obj     float64
	upper   float64 // +Inf when unbounded above
	integer bool
}

type constraint struct {
	name  string
	terms []Term
	rel   Rel
	rhs   float64
}

// Model is a linear (or mixed-integer) program under construction:
// minimize c·x subject to linear constraints, x ≥ 0, with optional
// upper bounds and integrality marks. Not safe for concurrent use.
type Model struct {
	vars []variable
	cons []constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a variable with objective coefficient obj and domain
// x ≥ 0 (no upper bound). The name is used in error messages only.
func (m *Model) AddVar(name string, obj float64) Var {
	m.vars = append(m.vars, variable{name: name, obj: obj, upper: math.Inf(1)})
	return Var(len(m.vars) - 1)
}

// SetUpper bounds the variable above: x ≤ hi.
func (m *Model) SetUpper(v Var, hi float64) {
	m.vars[v].upper = hi
}

// SetInteger marks the variable as integral (used by SolveMILP; Solve
// ignores the mark and solves the continuous relaxation).
func (m *Model) SetInteger(v Var) {
	m.vars[v].integer = true
}

// SetObj replaces the variable's objective coefficient.
func (m *Model) SetObj(v Var, obj float64) {
	m.vars[v].obj = obj
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// VarName returns the variable's name.
func (m *Model) VarName(v Var) string { return m.vars[v].name }

// AddConstraint adds Σ terms rel rhs. Terms referencing the same
// variable are summed. It returns an error for out-of-range variables
// or non-finite coefficients.
func (m *Model) AddConstraint(name string, terms []Term, rel Rel, rhs float64) error {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint %q has non-finite rhs %v", name, rhs)
	}
	merged := make(map[Var]float64, len(terms))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.vars) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			return fmt.Errorf("lp: constraint %q has non-finite coefficient for %s", name, m.vars[t.Var].name)
		}
		merged[t.Var] += t.Coef
	}
	out := make([]Term, 0, len(merged))
	for v := Var(0); int(v) < len(m.vars); v++ {
		if c, ok := merged[v]; ok && c != 0 { //slate:nolint floatcmp -- sparsity: drop exactly-cancelled terms only
			out = append(out, Term{Var: v, Coef: c})
		}
	}
	m.cons = append(m.cons, constraint{name: name, terms: out, rel: rel, rhs: rhs})
	return nil
}

// MustConstraint is AddConstraint that panics on error, for construction
// code whose inputs are programmatically correct.
func (m *Model) MustConstraint(name string, terms []Term, rel Rel, rhs float64) {
	if err := m.AddConstraint(name, terms, rel, rhs); err != nil {
		panic(err)
	}
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the value of each variable, indexed by Var. Only valid
	// when Status == Optimal.
	X []float64
}

// Value returns the solved value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }
