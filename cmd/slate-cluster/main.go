// Command slate-cluster runs a SLATE Cluster Controller daemon for one
// cluster: it receives telemetry pushed by local SLATE-proxies
// (POST /v1/metrics), relays aggregated windows to the Global
// Controller, and accepts rule pushes (POST /v1/rules) for local
// distribution (paper §3.2).
//
// Usage:
//
//	slate-cluster -cluster west -listen 127.0.0.1:7101 \
//	    -global http://127.0.0.1:7000 -period 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/servicelayernetworking/slate/internal/controlplane"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func main() {
	var (
		cluster   = flag.String("cluster", "", "cluster ID this controller serves (required)")
		listen    = flag.String("listen", "127.0.0.1:7101", "HTTP listen address")
		globalURL = flag.String("global", "", "global controller base URL (required)")
		selfURL   = flag.String("advertise", "", "URL the global controller should push rules to (default http://<listen>)")
		period    = flag.Duration("period", 5*time.Second, "telemetry report interval")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *cluster == "" || *globalURL == "" {
		fmt.Fprintln(os.Stderr, "slate-cluster: -cluster and -global are required")
		flag.Usage()
		os.Exit(2)
	}
	if *selfURL == "" {
		*selfURL = "http://" + *listen
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	cc := controlplane.NewCluster(topology.ClusterID(*cluster), *globalURL)
	if err := cc.Register(ctx, *selfURL); err != nil {
		log.Fatalf("slate-cluster: register: %v", err)
	}

	go cc.Run(ctx, *period)

	h := cc.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", h)
		obs.MountDebug(mux)
		h = mux
	}
	srv := &http.Server{Addr: *listen, Handler: h}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	log.Printf("slate-cluster[%s]: serving on %s, reporting to %s every %v",
		*cluster, *listen, *globalURL, *period)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("slate-cluster: %v", err)
	}
}
