// Command slate-emul boots a full SLATE deployment on loopback —
// application servers, SLATE-proxy sidecars, cluster controllers and
// the global controller — drives load at it, and reports end-to-end
// latencies. It is the fastest way to watch the whole architecture
// work on real sockets.
//
// Usage:
//
//	slate-emul -scenario scenario.json -duration 10s -control-period 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/emul"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/scenario"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func main() {
	var (
		path       = flag.String("scenario", "", "scenario JSON file (required; demand = drive rates)")
		duration   = flag.Duration("duration", 10*time.Second, "how long to drive load")
		ctrlPeriod = flag.Duration("control-period", 2*time.Second, "control loop interval (0 = off)")
		timeScale  = flag.Float64("time-scale", 1, "service time multiplier")
		netScale   = flag.Float64("netem-scale", 1, "network delay multiplier")
		seed       = flag.Int64("seed", 42, "routing pick seed")
		obsListen  = flag.String("obs-listen", "", "serve GET /metrics/prom for the whole mesh on this address (e.g. 127.0.0.1:9900)")
		pprofOn    = flag.Bool("pprof", false, "with -obs-listen, also mount net/http/pprof under /debug/pprof/")
		traceOut   = flag.String("trace-out", "", "write proxy trace spans as JSONL to this file at exit")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "slate-emul: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	top, app, demand, err := scenario.Load(*path)
	if err != nil {
		log.Fatalf("slate-emul: %v", err)
	}
	mesh, err := emul.Start(emul.Options{
		Top:           top,
		App:           app,
		TimeScale:     *timeScale,
		NetemScale:    *netScale,
		ControlPeriod: *ctrlPeriod,
		Controller:    core.ControllerConfig{LearnProfiles: true},
		Seed:          *seed,
	})
	if err != nil {
		log.Fatalf("slate-emul: %v", err)
	}
	defer mesh.Close()
	log.Printf("slate-emul: mesh up (%d clusters, app %s), global API at %s",
		top.NumClusters(), app.Name, mesh.GlobalURL())

	if *obsListen != "" {
		// One process-wide exposition endpoint: every component in the
		// mesh registers into obs.Default(), disambiguated by labels.
		mux := http.NewServeMux()
		mux.Handle("GET "+obs.MetricsPath, obs.Default().Handler())
		if *pprofOn {
			obs.MountDebug(mux)
		}
		go func() {
			log.Printf("slate-emul: metrics on http://%s%s", *obsListen, obs.MetricsPath)
			if err := http.ListenAndServe(*obsListen, mux); err != nil {
				log.Printf("slate-emul: obs listener: %v", err)
			}
		}()
	}

	type streamKey struct {
		class   string
		cluster topology.ClusterID
	}
	type outcome struct {
		key streamKey
		res *emul.LoadResult
		err error
	}
	var keys []streamKey
	for class, per := range demand {
		for cl, rps := range per {
			if rps > 0 {
				keys = append(keys, streamKey{class, cl})
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].cluster < keys[j].cluster
	})
	results := make(chan outcome, len(keys))
	ctx := context.Background()
	for _, k := range keys {
		k := k
		rps := demand[k.class][k.cluster]
		go func() {
			res, err := mesh.Drive(ctx, k.class, k.cluster, rps, *duration)
			results <- outcome{k, res, err}
		}()
	}
	byKey := map[streamKey]*emul.LoadResult{}
	for range keys {
		o := <-results
		if o.err != nil {
			log.Fatalf("slate-emul: drive %s@%s: %v", o.key.class, o.key.cluster, o.err)
		}
		byKey[o.key] = o.res
	}
	fmt.Printf("%-12s %-8s %8s %6s %12s %12s\n", "CLASS", "CLUSTER", "SENT", "ERR", "MEAN", "P99")
	for _, k := range keys {
		res := byKey[k]
		fmt.Printf("%-12s %-8s %8d %6d %12v %12v\n",
			k.class, k.cluster, res.Sent, res.Errors, res.Mean().Round(time.Microsecond), res.P99().Round(time.Microsecond))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("slate-emul: trace-out: %v", err)
		}
		sw := obs.NewSpanWriter(f)
		if err := sw.WriteSpans(mesh.DrainSpans()); err != nil {
			log.Fatalf("slate-emul: trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("slate-emul: trace-out: %v", err)
		}
		log.Printf("slate-emul: wrote %d spans to %s", sw.Count(), *traceOut)
	}
}
