// Command slate-global runs the SLATE Global Controller daemon: it
// accepts telemetry uploads from cluster controllers, periodically runs
// the routing optimization, and pushes rule tables back down (paper
// §3.3). The application model and topology come from a scenario file.
//
// Usage:
//
//	slate-global -scenario scenario.json -listen 127.0.0.1:7000 -period 5s
//
// Replicated mode — run N copies, each advertising its own URL; the
// cluster controllers are the lease acceptors, so replicas need no
// peer list:
//
//	slate-global -scenario scenario.json -listen 10.0.0.1:7000 \
//	    -replica http://10.0.0.1:7000 -lease-ttl 10s -event-threshold 0.25
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/servicelayernetworking/slate/internal/controlplane"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/scenario"
)

func main() {
	var (
		path       = flag.String("scenario", "", "scenario JSON file with topology and app (required)")
		listen     = flag.String("listen", "127.0.0.1:7000", "HTTP listen address")
		period     = flag.Duration("period", 5*time.Second, "optimization interval")
		latWeight  = flag.Float64("latency-weight", 1, "objective weight for latency")
		costWeight = flag.Float64("cost-weight", 0, "objective weight for egress cost")
		maxStep    = flag.Float64("max-step", 0.25, "max traffic weight moved per period per rule")
		learn      = flag.Bool("learn-profiles", true, "fit latency profiles from telemetry")
		guard      = flag.Bool("guard", true, "revert rule changes that regress the measured objective")
		margin     = flag.Float64("robust-margin", 0, "robust mode: relative demand-uncertainty margin (0 disables; e.g. 0.25 hedges a 25% surge)")
		budget     = flag.Int("robust-budget", 0, "robust mode: Bertsimas–Sim budget Γ — max classes surging per pool at once (0 = all, i.e. box uncertainty)")
		predictive = flag.Bool("predictive", false, "plan for forecasted demand (Holt trend smoothing) instead of the last window's estimate alone")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		replica    = flag.String("replica", "", "advertised base URL of this replica; enables replicated mode (leader lease + warm snapshot handoff)")
		leaseTTL   = flag.Duration("lease-ttl", 10*time.Second, "replicated mode: leader lease TTL (2x the period is a good choice)")
		eventThr   = flag.Float64("event-threshold", 0.25, "replicated mode: relative per-cluster load change arming an immediate re-solve (negative disables)")
		eventBurst = flag.Int("event-burst", 2, "replicated mode: max banked event-solve tokens")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "slate-global: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	top, app, demand, err := scenario.Load(*path)
	if err != nil {
		log.Fatalf("slate-global: %v", err)
	}
	ctrl, err := core.NewController(top, app, core.ControllerConfig{
		Optimizer:       core.Config{LatencyWeight: *latWeight, CostWeight: *costWeight},
		MaxStep:         *maxStep,
		LearnProfiles:   *learn,
		GuardRegression: *guard,
		Robust:          *margin > 0,
		DemandMargin:    *margin,
		Budget:          *budget,
		Predictive:      *predictive,
	})
	if err != nil {
		log.Fatalf("slate-global: %v", err)
	}
	if len(demand) > 0 {
		ctrl.SetDemand(demand) // optional seed; telemetry refines it
	}
	g := controlplane.NewGlobal(ctrl)
	if *replica != "" {
		g.EnableHA(*replica, controlplane.HAConfig{
			LeaseTTL:       *leaseTTL,
			EventThreshold: *eventThr,
			EventBurst:     *eventBurst,
		})
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *replica != "" {
		go g.RunHA(ctx, *period)
	} else {
		go g.Run(ctx, *period)
	}

	h := g.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", h)
		obs.MountDebug(mux)
		h = mux
	}
	srv := &http.Server{Addr: *listen, Handler: h}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	mode := "single"
	if *replica != "" {
		mode = "replica " + *replica
	}
	log.Printf("slate-global: serving on %s (%s, period %v, app %s, %d clusters)",
		*listen, mode, *period, app.Name, top.NumClusters())
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("slate-global: %v", err)
	}
}
