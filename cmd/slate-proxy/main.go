// Command slate-proxy runs a standalone SLATE-proxy sidecar for one
// application instance (paper §3.1): it proxies inbound traffic to the
// local app, routes the app's outbound calls per the pushed rules,
// pushes telemetry to its cluster controller, and polls it for routing
// table updates. With slate-global and slate-cluster, this completes a
// SLATE deployment that spans real processes.
//
// Peer discovery uses a static JSON resolver file mapping
// "service@cluster" to the peer sidecar's base URL:
//
//	{"svc-b@west": "http://10.0.0.4:9001", "svc-b@east": "http://10.1.0.4:9001"}
//
// Usage:
//
//	slate-proxy -service svc-a -cluster west -listen 127.0.0.1:9000 \
//	    -local-app http://127.0.0.1:8080 \
//	    -cluster-controller http://127.0.0.1:7101 \
//	    -resolver peers.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/servicelayernetworking/slate/internal/dataplane"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func main() {
	var (
		service  = flag.String("service", "", "application service this sidecar fronts (required)")
		cluster  = flag.String("cluster", "", "cluster this instance runs in (required)")
		listen   = flag.String("listen", "127.0.0.1:9000", "HTTP listen address")
		localApp = flag.String("local-app", "", "base URL of the local application instance (required)")
		ccURL    = flag.String("cluster-controller", "", "cluster controller base URL (optional: without it the proxy serves rules-free)")
		resolver = flag.String("resolver", "", "JSON file mapping service@cluster to sidecar URLs (required)")
		period   = flag.Duration("sync-period", 5*time.Second, "telemetry push / rule poll interval")
		seed     = flag.Int64("seed", 0, "routing pick seed (0 = time-based)")

		// Graceful-degradation knobs (see DESIGN.md "degradation ladder").
		staleAfter = flag.Duration("stale-after", 0, "rule staleness TTL: past it the proxy degrades to local-biased routing until the controller answers (0 = hold stale rules forever)")
		retries    = flag.Int("sync-retries", 2, "per-RPC retry attempts within one sync round (-1 disables)")
		backoff    = flag.Duration("sync-backoff", 100*time.Millisecond, "base retry backoff, doubled per attempt with seeded jitter")
		maxPending = flag.Int("max-pending-windows", 8, "telemetry windows re-queued across failed pushes before dropping the oldest")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *service == "" || *cluster == "" || *localApp == "" || *resolver == "" {
		fmt.Fprintln(os.Stderr, "slate-proxy: -service, -cluster, -local-app and -resolver are required")
		flag.Usage()
		os.Exit(2)
	}
	peers, err := loadResolver(*resolver)
	if err != nil {
		log.Fatalf("slate-proxy: %v", err)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	proxy, err := dataplane.New(dataplane.Config{
		Service:    *service,
		Cluster:    topology.ClusterID(*cluster),
		LocalApp:   *localApp,
		Resolver:   peers,
		Seed:       *seed,
		StaleAfter: *staleAfter,
	})
	if err != nil {
		log.Fatalf("slate-proxy: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *ccURL != "" {
		agent, err := dataplane.NewAgentOpts(proxy, *ccURL, dataplane.AgentOptions{
			Period:            *period,
			MaxRetries:        *retries,
			BackoffBase:       *backoff,
			Seed:              *seed,
			MaxPendingWindows: *maxPending,
		})
		if err != nil {
			log.Fatalf("slate-proxy: %v", err)
		}
		go agent.Run(ctx)
	}

	// The proxy serves GET /metrics/prom itself; -pprof adds the
	// debug endpoints in front of the catch-all proxying.
	var h http.Handler = proxy
	if *pprofOn {
		mux := http.NewServeMux()
		obs.MountDebug(mux)
		mux.Handle("/", proxy)
		h = mux
	}
	srv := &http.Server{Addr: *listen, Handler: h}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	log.Printf("slate-proxy[%s@%s]: serving on %s, app %s, cc %q",
		*service, *cluster, *listen, *localApp, *ccURL)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("slate-proxy: %v", err)
	}
}

// staticResolver resolves peers from the static map.
type staticResolver map[string]string

func (r staticResolver) Resolve(service string, cluster topology.ClusterID) (string, error) {
	if u, ok := r[service+"@"+string(cluster)]; ok {
		return u, nil
	}
	return "", fmt.Errorf("no entry for %s@%s", service, cluster)
}

func loadResolver(path string) (staticResolver, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m staticResolver
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("resolver file %s is empty", path)
	}
	return m, nil
}
