// Command slate-bench regenerates the paper's evaluation artifacts:
// every figure of the evaluation section plus the headline claims and
// the repository's ablations, printed as plain-text series and summary
// tables.
//
// Usage:
//
//	slate-bench -exp all
//	slate-bench -exp fig6a -duration 120s -seed 7
//	slate-bench -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"github.com/servicelayernetworking/slate/internal/experiments"
	"github.com/servicelayernetworking/slate/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig3, fig4, fig6a..fig6d, headline, ablation-*, burst, chaos, ...) or \"all\"")
		duration = flag.Duration("duration", 60*time.Second, "virtual measurement duration per run")
		warmup   = flag.Duration("warmup", 10*time.Second, "virtual warmup excluded from results")
		seed     = flag.Int64("seed", 42, "simulation seed")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		traceOut = flag.String("trace-out", "", "write simulated trace spans as JSONL to this file (experiments that export spans, e.g. chaos)")
		showObs  = flag.Bool("metrics", false, "print the process obs exposition (Prometheus text) after the runs")
	)
	flag.Parse()

	all := experiments.All()
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	opt := experiments.Options{Duration: *duration, Warmup: *warmup, Seed: *seed}
	var spanFile *os.File
	var spans *obs.SpanWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("slate-bench: trace-out: %v", err)
		}
		spanFile = f
		spans = obs.NewSpanWriter(f)
		opt.SpanSink = spans
	}
	finish := func() {
		if spanFile != nil {
			if err := spanFile.Close(); err != nil {
				log.Fatalf("slate-bench: trace-out: %v", err)
			}
			log.Printf("slate-bench: wrote %d spans to %s", spans.Count(), *traceOut)
		}
		if *showObs {
			fmt.Println("== metrics (Prometheus exposition) ==")
			obs.Default().WritePrometheus(os.Stdout)
		}
	}
	run := func(id string) error {
		f, ok := all[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		fig, err := f(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		experiments.Render(os.Stdout, fig)
		fmt.Println()
		return nil
	}

	if *exp == "all" {
		for _, id := range ids {
			if err := run(id); err != nil {
				fmt.Fprintln(os.Stderr, "slate-bench:", err)
				os.Exit(1)
			}
		}
		finish()
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "slate-bench:", err)
		os.Exit(1)
	}
	finish()
}
