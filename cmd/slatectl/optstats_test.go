package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/servicelayernetworking/slate/internal/obs"
)

func TestOptStats(t *testing.T) {
	const exposition = `# HELP slate_global_search_solves Cumulative dirty-shard solves served by the anytime local search.
# TYPE slate_global_search_solves gauge
slate_global_search_solves 28
slate_global_search_simplex_wins 4
slate_global_search_gap_abandoned 4
slate_global_lp_warm_solves 60
slate_global_lp_cold_solves 32
slate_global_subproblems 32
slate_global_subproblem_solves 96
slate_global_subproblem_skips 12
slate_global_ticks_total 5
`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != obs.MetricsPath {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(exposition))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := optStats(&out, []string{srv.URL}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"search solves (race won)",
		"28",
		"simplex wins (race lost)",
		"search abandoned (gap/infeasible)",
		"LP warm solves",
		"subproblem skips",
		"search win rate",
		"87.5%",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("optstats output missing %q:\n%s", want, got)
		}
	}

	if err := optStats(&out, nil); err == nil {
		t.Error("expected usage error with no args")
	}
}

func TestOptStatsNoSolverMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("other_metric 1\n"))
	}))
	defer srv.Close()
	var out strings.Builder
	if err := optStats(&out, []string{srv.URL}); err == nil {
		t.Error("expected an error when no slate_global_* metrics are exposed")
	}
}
