package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serveHealth(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/health" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestLeaderStatus points `slatectl leader` at both health shapes — a
// global replica and a cluster controller — and checks the output.
func TestLeaderStatus(t *testing.T) {
	gsrv := serveHealth(t, `{"replica":"http://10.0.0.1:7000","role":"leader",
		"leader_url":"http://10.0.0.1:7000","lease_epoch":3,"table_version":17,"ticks":40}`)
	var out strings.Builder
	if err := leaderStatus(&out, []string{gsrv.URL}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"global controller leader", "http://10.0.0.1:7000", "lease epoch", "3", "table version", "17"} {
		if !strings.Contains(got, want) {
			t.Errorf("global output missing %q in:\n%s", want, got)
		}
	}

	csrv := serveHealth(t, `{"cluster":"west","table_version":17,
		"leader_url":"http://10.0.0.1:7000","leader_epoch":3,"pub_epoch":3}`)
	out.Reset()
	// Bare host:port must work too.
	if err := leaderStatus(&out, []string{strings.TrimPrefix(csrv.URL, "http://")}); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	for _, want := range []string{"cluster controller west", "leader", "fence epoch", "table version"} {
		if !strings.Contains(got, want) {
			t.Errorf("cluster output missing %q in:\n%s", want, got)
		}
	}
}

func TestLeaderStatusErrors(t *testing.T) {
	if err := leaderStatus(&strings.Builder{}, nil); err == nil {
		t.Error("expected usage error with no args")
	}
	srv := serveHealth(t, `{}`)
	if err := leaderStatus(&strings.Builder{}, []string{srv.URL}); err == nil {
		t.Error("expected an error for a health body with neither role nor cluster")
	}
}
