// Command slatectl runs SLATE's global optimization over a scenario
// file and prints the routing rules and predictions — the offline
// "what would SLATE do" tool.
//
// Usage:
//
//	slatectl -scenario scenario.json
//	slatectl -scenario scenario.json -cost-weight 1e4 -json
//	slatectl -scenario scenario.json -policy waterfall -threshold 0.8
//	slatectl metrics 127.0.0.1:7000        # scrape a live daemon
//	slatectl optstats 127.0.0.1:7000       # solver win counters
//	slatectl leader 127.0.0.1:7000         # role, lease epoch, table version
//	slatectl diff old-table.json new-table.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/servicelayernetworking/slate/internal/baseline"
	"github.com/servicelayernetworking/slate/internal/core"
	"github.com/servicelayernetworking/slate/internal/obs"
	"github.com/servicelayernetworking/slate/internal/routing"
	"github.com/servicelayernetworking/slate/internal/scenario"
	"github.com/servicelayernetworking/slate/internal/topology"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		if err := scrapeMetrics(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "optstats" {
		if err := optStats(os.Stdout, os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "leader" {
		if err := leaderStatus(os.Stdout, os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		if err := diffTables(os.Stdout, os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	var (
		path       = flag.String("scenario", "", "scenario JSON file (required)")
		latWeight  = flag.Float64("latency-weight", 1, "objective weight for latency")
		costWeight = flag.Float64("cost-weight", 0, "objective weight for egress cost ($/s)")
		policy     = flag.String("policy", "slate", "slate | waterfall | locality-failover")
		threshold  = flag.Float64("threshold", 0.8, "waterfall threshold fraction of rated capacity")
		asJSON     = flag.Bool("json", false, "emit the routing table as JSON")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "slatectl: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	top, app, demand, err := scenario.Load(*path)
	if err != nil {
		fatal(err)
	}

	switch *policy {
	case "slate":
		prob := &core.Problem{
			Top:      top,
			App:      app,
			Demand:   demand,
			Profiles: core.DefaultProfiles(app, top, demand),
			Config:   core.Config{LatencyWeight: *latWeight, CostWeight: *costWeight},
		}
		plan, err := prob.Optimize(1)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			json.NewEncoder(os.Stdout).Encode(plan.Table)
			return
		}
		fmt.Print(plan.Table.String())
		fmt.Printf("\nobjective: %.6f\n", plan.Objective)
		fmt.Printf("planned egress: %.3f MB/s ($%.6f/s)\n",
			plan.EgressBytesPerSecond/1e6, plan.EgressPerSecond)
		classes := make([]string, 0, len(plan.PredictedMeanLatency))
		for c := range plan.PredictedMeanLatency {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Printf("predicted mean latency [%s]: %v\n", c, plan.PredictedMeanLatency[c])
		}
		fmt.Println("\nplanned pool loads:")
		for _, l := range plan.Loads {
			fmt.Printf("  %-24s %8.1f std-rps  util %5.1f%%  sojourn %v\n",
				l.Key.String(), l.StdRPS, l.Utilization*100, l.PredictedSojourn)
		}
	case "waterfall":
		caps := baseline.DefaultCapacities(app, top, demand, *threshold)
		tab, err := baseline.Waterfall(top, app, demand, caps, 1)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			json.NewEncoder(os.Stdout).Encode(tab)
			return
		}
		fmt.Print(tab.String())
	case "locality-failover":
		tab, err := baseline.LocalityFailover(top, app, 1)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			json.NewEncoder(os.Stdout).Encode(tab)
			return
		}
		fmt.Print(tab.String())
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
}

// scrapeMetrics fetches a SLATE daemon's Prometheus exposition
// (`slatectl metrics <addr>`) and prints it to stdout. addr may be a
// bare host:port or a full base URL; the /metrics/prom path is appended
// unless already present.
func scrapeMetrics(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: slatectl metrics <addr>")
	}
	body, err := fetchMetrics(args[0])
	if err != nil {
		return err
	}
	_, err = os.Stdout.WriteString(body)
	return err
}

// fetchMetrics GETs a daemon's Prometheus exposition. addr may be a
// bare host:port or a full base URL; the /metrics/prom path is appended
// unless already present.
func fetchMetrics(addr string) (string, error) {
	u := addr
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	if !strings.HasSuffix(u, obs.MetricsPath) {
		u = strings.TrimSuffix(u, "/") + obs.MetricsPath
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("%s: status %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// optStats scrapes a daemon's metrics endpoint and prints the solver
// win counters (`slatectl optstats <addr>`): how the controller's dirty
// shards were served — anytime search wins, simplex fallbacks, search
// candidates abandoned for missing the configured gap — alongside the
// warm/cold LP solve and subproblem skip counters.
func optStats(w io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: slatectl optstats <addr>")
	}
	body, err := fetchMetrics(args[0])
	if err != nil {
		return err
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || !strings.HasPrefix(fields[0], "slate_global_") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
			vals[fields[0]] = v
		}
	}
	rows := []struct{ label, metric string }{
		{"search solves (race won)", "slate_global_search_solves"},
		{"simplex wins (race lost)", "slate_global_search_simplex_wins"},
		{"search abandoned (gap/infeasible)", "slate_global_search_gap_abandoned"},
		{"LP warm solves", "slate_global_lp_warm_solves"},
		{"LP cold solves", "slate_global_lp_cold_solves"},
		{"subproblems", "slate_global_subproblems"},
		{"subproblem solves", "slate_global_subproblem_solves"},
		{"subproblem skips", "slate_global_subproblem_skips"},
	}
	found := false
	for _, r := range rows {
		v, ok := vals[r.metric]
		if !ok {
			continue
		}
		found = true
		fmt.Fprintf(w, "%-34s %12.0f\n", r.label, v)
	}
	if !found {
		return fmt.Errorf("no slate_global_* solver metrics at %s (is this a global controller?)", args[0])
	}
	search, simplex := vals["slate_global_search_solves"], vals["slate_global_search_simplex_wins"]
	if raced := search + simplex; raced > 0 {
		fmt.Fprintf(w, "%-34s %11.1f%%\n", "search win rate", 100*search/raced)
	}
	return nil
}

// leaderStatus fetches a controller's /v1/health and prints who leads
// the control plane (`slatectl leader <addr>`). Pointed at a global
// replica it prints the replica's role, lease epoch and table version;
// pointed at a cluster controller it prints which replica holds that
// cluster's vote and the publish-fence epoch.
func leaderStatus(w io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: slatectl leader <addr>")
	}
	u := args[0]
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	u = strings.TrimSuffix(u, "/") + "/v1/health"
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: status %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	// One view fits both health shapes: a cluster controller reports
	// "cluster", a global replica reports "role".
	var h struct {
		Cluster      string `json:"cluster"`
		Replica      string `json:"replica"`
		Role         string `json:"role"`
		LeaderURL    string `json:"leader_url"`
		LeaseEpoch   uint64 `json:"lease_epoch"`
		LeaderEpoch  uint64 `json:"leader_epoch"`
		PubEpoch     uint64 `json:"pub_epoch"`
		TableVersion uint64 `json:"table_version"`
		LastError    string `json:"last_error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("%s: %w", u, err)
	}
	line := func(k string, v any) { fmt.Fprintf(w, "%-14s %v\n", k, v) }
	if h.Cluster != "" {
		fmt.Fprintf(w, "cluster controller %s\n", h.Cluster)
		leader := h.LeaderURL
		if leader == "" {
			leader = "(none: unreplicated or no lease granted)"
		}
		line("leader", leader)
		line("lease epoch", h.LeaderEpoch)
		line("fence epoch", h.PubEpoch)
		line("table version", h.TableVersion)
		return nil
	}
	if h.Role == "" {
		return fmt.Errorf("%s: no role or cluster in health response (not a SLATE controller?)", u)
	}
	fmt.Fprintf(w, "global controller %s\n", h.Role)
	if h.Replica != "" {
		line("replica", h.Replica)
	}
	if h.LeaderURL != "" {
		line("leader", h.LeaderURL)
	}
	line("lease epoch", h.LeaseEpoch)
	line("table version", h.TableVersion)
	if h.LastError != "" {
		line("last error", h.LastError)
	}
	return nil
}

// diffTables loads two routing-table JSON files (as emitted by
// `slatectl -json` or the control-plane wire protocol) and prints a
// human-readable routing.Diff (`slatectl diff <a.json> <b.json>`): one
// line per changed rule with the per-cluster weight moves and the
// fraction of that rule's traffic changing destination. It doubles as
// the debugging tool for the patch-based rule distribution: diffing a
// cluster's table before and after a patch shows what the patch did.
func diffTables(w io.Writer, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: slatectl diff <table-a.json> <table-b.json>")
	}
	tabs := make([]*routing.Table, 2)
	for i, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var t routing.Table
		if err := json.Unmarshal(data, &t); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tabs[i] = &t
	}
	deltas := routing.Diff(tabs[0], tabs[1])
	fmt.Fprintf(w, "v%d -> v%d: %d rule(s) changed\n", tabs[0].Version, tabs[1].Version, len(deltas))
	for _, d := range deltas {
		ids := make([]topology.ClusterID, 0, len(d.Moves))
		for c := range d.Moves {
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var b strings.Builder
		for _, c := range ids {
			fmt.Fprintf(&b, "  %s %+.3f", c, d.Moves[c])
		}
		fmt.Fprintf(w, "  %-36s moved %5.1f%%:%s\n", d.Key.String(), d.TotalMove()*100, b.String())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slatectl:", err)
	os.Exit(1)
}
