// Command slate-lint runs SLATE's custom static analyzers
// (internal/analysis) over the repository and fails the build on
// findings. It is stdlib-only and offline: packages are type-checked
// against module source plus GOROOT, nothing is downloaded.
//
// Usage:
//
//	slate-lint [-C dir] [-run name,name] [-list] [patterns...]
//
//	slate-lint ./...                 # everything (the CI gate)
//	slate-lint ./internal/...        # one subtree
//	slate-lint -run lockguard ./...  # a single analyzer
//
// Diagnostics print as "file:line:col: [analyzer] message"; the exit
// status is 1 when there are findings, 2 on usage or load errors.
// Deliberate exceptions are annotated in the source with
// "//slate:nolint analyzer -- reason".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/servicelayernetworking/slate/internal/analysis"
)

func main() {
	var (
		dir  = flag.String("C", ".", "module root to lint from")
		run  = flag.String("run", "", "comma-separated analyzer names (default: all)")
		list = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		found, unknown := analysis.ByName(strings.Split(*run, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "slate-lint: unknown analyzer(s): %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = found
	}

	findings, err := analysis.Run(analysis.Options{
		Dir:       *dir,
		Patterns:  flag.Args(),
		Analyzers: analyzers,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slate-lint: %v\n", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "slate-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
