// Command slate-lint runs SLATE's custom static analyzers
// (internal/analysis) over the repository and fails the build on
// findings. It is stdlib-only and offline: packages are type-checked
// against module source plus GOROOT, nothing is downloaded.
//
// Usage:
//
//	slate-lint [-C dir] [-run name,name] [-json] [-cache dir] [-list] [patterns...]
//	slate-lint -audit [-C dir] [-json] [patterns...]
//
//	slate-lint ./...                 # everything (the CI gate)
//	slate-lint ./internal/...        # one subtree
//	slate-lint -run lockguard ./...  # a single analyzer
//	slate-lint -json ./...           # machine-readable findings
//	slate-lint -cache .slatecache ./...  # warm runs skip unchanged packages
//	slate-lint -audit ./...          # inventory //slate:nolint directives
//
// Diagnostics print as "file:line:col: [analyzer] message"; the exit
// status is 1 when there are findings, 2 on usage or load errors.
// Deliberate exceptions are annotated in the source with
// "//slate:nolint analyzer -- reason"; -audit lists them all and fails
// when a suppression is missing its reason tail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/servicelayernetworking/slate/internal/analysis"
)

func main() {
	var (
		dir      = flag.String("C", ".", "module root to lint from")
		run      = flag.String("run", "", "comma-separated analyzer names (default: all)")
		list     = flag.Bool("list", false, "list registered analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		cacheDir = flag.String("cache", "", "content-hash result cache directory (e.g. .slatecache); empty disables caching")
		audit    = flag.Bool("audit", false, "list every //slate:nolint directive; exit 1 if any lacks a -- reason")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *audit {
		runAudit(*dir, flag.Args(), *jsonOut)
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		found, unknown := analysis.ByName(strings.Split(*run, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "slate-lint: unknown analyzer(s): %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = found
	}

	opts := analysis.Options{
		Dir:       *dir,
		Patterns:  flag.Args(),
		Analyzers: analyzers,
		CacheDir:  *cacheDir,
	}

	if *jsonOut {
		res, err := analysis.RunFindings(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slate-lint: %v\n", err)
			os.Exit(2)
		}
		for _, te := range res.TypeErrors {
			fmt.Fprintln(os.Stderr, te)
		}
		findings := res.Findings
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "slate-lint: %v\n", err)
			os.Exit(2)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "slate-lint: %d finding(s)\n", len(findings))
			os.Exit(1)
		}
		return
	}

	findings, err := analysis.Run(opts, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slate-lint: %v\n", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "slate-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// runAudit inventories //slate:nolint directives. Suppressions without
// a recorded reason fail the audit: an exception nobody can triage is
// a future bug.
func runAudit(dir string, patterns []string, jsonOut bool) {
	entries, err := analysis.Audit(analysis.Options{Dir: dir, Patterns: patterns})
	if err != nil {
		fmt.Fprintf(os.Stderr, "slate-lint: %v\n", err)
		os.Exit(2)
	}
	missing := 0
	if jsonOut {
		if entries == nil {
			entries = []analysis.NolintEntry{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			fmt.Fprintf(os.Stderr, "slate-lint: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			if e.Reason == "" {
				missing++
			}
		}
	} else {
		for _, e := range entries {
			scope := strings.Join(e.Analyzers, ",")
			if scope == "" {
				scope = "(all)"
			}
			reason := e.Reason
			if reason == "" {
				reason = "<<MISSING REASON>>"
				missing++
			}
			fmt.Printf("%s:%d: %s -- %s\n", e.File, e.Line, scope, reason)
		}
		fmt.Printf("%d suppression(s), %d missing a reason\n", len(entries), missing)
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "slate-lint: %d //slate:nolint directive(s) missing the '-- reason' tail\n", missing)
		os.Exit(1)
	}
}
